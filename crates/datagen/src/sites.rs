//! Legitimate-site generators.
//!
//! Each generated site hosts one landing page in the [`WebWorld`] (plus
//! optional redirect entries); outgoing links and resources are URLs that
//! need no hosting since the browser does not recurse into them. Sites
//! follow the structural regularities the paper attributes to legitimate
//! pages: the registered domain spells the brand/service, term usage is
//! coherent across text/title/domain/links, most links and resources are
//! internal, and redirection stays within the owner's RDN.

use crate::brands::Brand;
use crate::lexicon::{self, Language};
use kyp_html::PageBuilder;
use kyp_web::{Page, WebWorld};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The flavours of legitimate site the generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SiteKind {
    /// A brand's front page.
    BrandFront,
    /// A brand's login page (looks superficially phish-like: https + form).
    BrandLogin,
    /// A news portal: link anchors repeat in body text.
    News,
    /// A personal blog: text heavy, few links.
    Blog,
    /// An online shop: forms, many images.
    Shop,
    /// A company site: strong mld/text consistency.
    Corporate,
    /// A blog hosted on a shared platform: the RDN belongs to the
    /// platform, not the author, so the mld is unrelated to the content —
    /// the legitimate pages the paper reports as hardest (Section VII-B).
    PlatformBlog,
    /// A minimal splash/login page (webmail, intranet): little text, a
    /// credential form — superficially phish-shaped.
    Splash,
    /// A parked domain: near-empty content and concentrated external ad
    /// links — the legitimate pages the paper reports being misclassified
    /// as phish (Section VII-B).
    ParkedLike,
    /// A small credential portal (shared shape with brand-less harvester
    /// kits — the irreducibly ambiguous cohort).
    Portal,
}

/// Shared hosting platforms (blogspot-like): many unrelated sites under
/// one registered domain.
const PLATFORM_RDNS: [&str; 4] = [
    "blogpark.com",
    "webhostia.net",
    "pagecloud.io",
    "homesite.co",
];

/// Legitimate URL shorteners used in marketing emails: a legitimate page
/// reached through a cross-RDN redirect, like a phish would be.
const SHORTENER_RDNS: [&str; 3] = ["lnkgo.co", "tinyhop.info", "shrt.link"];

/// Description of one generated site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteInfo {
    /// URL to give the browser.
    pub start_url: String,
    /// The site's registered domain.
    pub rdn: String,
    /// The site's mld.
    pub mld: String,
    /// Text a search-engine crawler would index for this site.
    pub index_text: String,
    /// What flavour of site was generated.
    pub kind: SiteKind,
}

/// Deterministic generator of legitimate sites.
///
/// # Examples
///
/// ```
/// use kyp_datagen::{Language, SiteGenerator};
/// use kyp_web::{Browser, WebWorld};
///
/// let mut world = WebWorld::new();
/// let mut generator = SiteGenerator::new(7);
/// let info = generator.generic_site(&mut world, Language::French);
/// let visit = Browser::new(&world).visit(&info.start_url)?;
/// assert_eq!(visit.landing_url.rdn().as_deref(), Some(info.rdn.as_str()));
/// # Ok::<(), kyp_web::VisitError>(())
/// ```
#[derive(Debug)]
pub struct SiteGenerator {
    rng: ChaCha8Rng,
    counter: u64,
}

impl SiteGenerator {
    /// Creates a generator; equal seeds reproduce identical sites.
    pub fn new(seed: u64) -> Self {
        SiteGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Generates a brand's site (front or login page) on its real domain.
    pub fn brand_site(
        &mut self,
        world: &mut WebWorld,
        brand: &Brand,
        language: Language,
    ) -> SiteInfo {
        self.counter += 1;
        let kind = if self.rng.gen_bool(0.35) {
            SiteKind::BrandLogin
        } else {
            SiteKind::BrandFront
        };
        let domain = &brand.domain;
        let host = if self.rng.gen_bool(0.7) {
            format!("www.{domain}")
        } else {
            domain.clone()
        };
        // Non-English brand pages live in a localised site section so
        // they coexist with the English front page.
        let lang_prefix = match language.path_code() {
            "" => String::new(),
            code => format!("{code}/"),
        };
        let (page_path, start_path) = match kind {
            SiteKind::BrandLogin => (
                format!("{lang_prefix}signin"),
                format!("{lang_prefix}signin"),
            ),
            _ => (lang_prefix.clone(), lang_prefix),
        };
        let landing = format!("https://{host}/{page_path}");

        // Vocabulary: sector keywords + language prose + the brand name.
        let keywords = brand.sector.keywords();
        let mut text_parts: Vec<String> = Vec::new();
        for _ in 0..self.rng.gen_range(3..6) {
            let mut sentence = lexicon::sample_sentence(&mut self.rng, language, 8, 1);
            if self.rng.gen_bool(0.8) {
                sentence.push(' ');
                sentence.push_str(&brand.display);
            }
            if self.rng.gen_bool(0.6) {
                sentence.push(' ');
                sentence.push_str(keywords.choose(&mut self.rng).expect("keywords"));
            }
            text_parts.push(sentence);
        }

        let service = language.service_words();
        let title = format!(
            "{} — {}",
            brand.display,
            keywords.choose(&mut self.rng).expect("keywords")
        );
        let mut page = PageBuilder::new()
            .title(&title)
            .heading(&format!("{} {}", language.welcome(), brand.display))
            .stylesheet(&format!("https://{host}/assets/main.css"))
            .script(&format!("https://{host}/assets/app.js"));
        for p in &text_parts {
            page = page.paragraph(p);
        }
        // Internal links spelling the brand and services.
        for _ in 0..self.rng.gen_range(3..7) {
            let word = service.choose(&mut self.rng).expect("service");
            page = page.link(
                &format!("https://{host}/{}/{word}", brand.name),
                &format!("{} {word}", brand.display),
            );
        }
        // Occasional external partner link / CDN resource.
        if self.rng.gen_bool(0.5) {
            page = page.link("https://partner-network.com/offers", "Partners");
        }
        if self.rng.gen_bool(0.6) {
            page = page.script("https://cdn.webstatic.net/lib/analytics.js");
        }
        for i in 0..self.rng.gen_range(1..4) {
            page = page.image(&format!("/img/visual{i}.png"));
        }
        if kind == SiteKind::BrandLogin {
            page = page.form("/session", &["username", "password"]);
        }
        page = page.copyright(&format!(
            "© 2015 {} Inc. All rights reserved.",
            brand.display
        ));

        let html = page.build();
        let index_text = format!("{} {} {}", title, text_parts.join(" "), brand.domain);
        world.add_page(&landing, Page::new(html));

        // Entry point: often the bare domain redirecting to the canonical
        // www host (same RDN — world lookup ignores the scheme, so the
        // redirect must come from a different host/path).
        let start_url = if host != *domain && self.rng.gen_bool(0.5) {
            let from = format!("http://{domain}/{start_path}");
            world.add_redirect(&from, &landing);
            from
        } else {
            landing.clone()
        };

        SiteInfo {
            start_url,
            rdn: domain.clone(),
            mld: brand.name.clone(),
            index_text,
            kind,
        }
    }

    /// Generates a generic legitimate site on a fresh synthetic domain —
    /// or on a shared platform / behind a URL shortener for the hard
    /// tails the paper discusses in Section VII-B.
    pub fn generic_site(&mut self, world: &mut WebWorld, language: Language) -> SiteInfo {
        self.counter += 1;
        let roll = self.rng.gen_range(0..100);
        let kind = match roll {
            0..=20 => SiteKind::News,
            21..=41 => SiteKind::Blog,
            42..=58 => SiteKind::Shop,
            59..=76 => SiteKind::Corporate,
            77..=88 => SiteKind::PlatformBlog,
            89..=94 => SiteKind::Splash,
            95..=96 => SiteKind::ParkedLike,
            _ => SiteKind::Portal,
        };
        if kind == SiteKind::PlatformBlog {
            return self.platform_blog(world, language);
        }
        if kind == SiteKind::Splash {
            return self.splash_site(world, language);
        }
        if kind == SiteKind::ParkedLike {
            return self.parked_site(world, language);
        }
        if kind == SiteKind::Portal {
            let spec =
                crate::portal::portal_site(&mut self.rng, self.counter, world, language, 0.0);
            return SiteInfo {
                start_url: spec.start_url,
                rdn: spec.rdn,
                mld: spec.mld,
                index_text: spec.index_text,
                kind: SiteKind::Portal,
            };
        }

        let mld = self.fresh_mld();
        let suffix = *lexicon::legit_suffixes(language)
            .choose(&mut self.rng)
            .expect("suffixes");
        let rdn = format!("{mld}.{suffix}");
        let host = if self.rng.gen_bool(0.6) {
            format!("www.{rdn}")
        } else {
            rdn.clone()
        };
        let https = self.rng.gen_bool(0.65);
        let scheme = if https { "https" } else { "http" };
        let path = self.landing_path(kind, language);
        let landing = format!("{scheme}://{host}/{path}");

        // The site's "identity terms": mld tokens reused across sources.
        let identity: Vec<String> = kyp_text::extract_terms(&mld);
        let identity_str = identity.join(" ");

        let mut text_parts: Vec<String> = Vec::new();
        let paragraphs = match kind {
            SiteKind::Blog | SiteKind::News => self.rng.gen_range(5..9),
            _ => self.rng.gen_range(3..6),
        };
        for _ in 0..paragraphs {
            let mut s = lexicon::sample_sentence(&mut self.rng, language, 10, 1);
            if self.rng.gen_bool(0.55) && !identity_str.is_empty() {
                s.push(' ');
                s.push_str(&identity_str);
            }
            text_parts.push(s);
        }

        let title = match kind {
            SiteKind::News => format!(
                "{identity_str} — {}",
                lexicon::sample_words(&mut self.rng, language, 2).join(" ")
            ),
            _ => format!(
                "{identity_str} {}",
                lexicon::sample_words(&mut self.rng, language, 1)[0]
            ),
        };

        let mut page = PageBuilder::new()
            .title(&title)
            .heading(&format!("{} {identity_str}", language.welcome()))
            .stylesheet("/css/site.css");
        for p in &text_parts {
            page = page.paragraph(p);
        }

        // Links: internal majority; news sites repeat the anchor word in a
        // nearby paragraph (the text∩links noise motivating prominent terms).
        let n_links = match kind {
            SiteKind::News => self.rng.gen_range(6..12),
            SiteKind::Blog => self.rng.gen_range(1..4),
            _ => self.rng.gen_range(3..8),
        };
        for _ in 0..n_links {
            let word = *language
                .common_words()
                .choose(&mut self.rng)
                .expect("words");
            page = page.link(&format!("/{}", slugify(word)), word);
            if kind == SiteKind::News {
                page = page.paragraph(&format!(
                    "{word} {}",
                    lexicon::sample_sentence(&mut self.rng, language, 6, 0)
                ));
            }
        }
        // External links for news/corporate.
        if matches!(kind, SiteKind::News | SiteKind::Corporate) {
            for _ in 0..self.rng.gen_range(1..4) {
                let token = *lexicon::DOMAIN_TOKENS
                    .choose(&mut self.rng)
                    .expect("tokens");
                let www = if self.rng.gen_bool(0.5) { "www." } else { "" };
                page = page.link(
                    &format!(
                        "https://{www}{token}-press.com/article/{}",
                        self.rng.gen_range(1..999)
                    ),
                    &lexicon::sample_words(&mut self.rng, language, 2).join(" "),
                );
            }
        }
        // Resources.
        for i in 0..self.rng.gen_range(1..5) {
            page = page.image(&format!("/media/photo{i}.jpg"));
        }
        if self.rng.gen_bool(0.4) {
            page = page.script("https://cdn.webstatic.net/lib/analytics.js");
        }
        if kind == SiteKind::Shop {
            page = page.form("/search", &["query"]);
            if self.rng.gen_bool(0.4) {
                page = page.form("/newsletter", &["email"]);
            }
        }
        if self.rng.gen_bool(0.7) {
            page = page.copyright(&format!("© 2015 {identity_str}"));
        }

        let html = page.build();
        let index_text = format!("{} {}", title, text_parts.join(" "));
        world.add_page(&landing, Page::new(html));

        let start_url = if self.rng.gen_bool(0.06) {
            // A marketing email link through a legitimate URL shortener:
            // a cross-RDN redirect chain on a legitimate page.
            self.shortener_entry(world, &landing)
        } else if host != rdn && self.rng.gen_bool(0.25) {
            let from = format!("http://{rdn}/");
            world.add_redirect(&from, &landing);
            from
        } else {
            landing.clone()
        };

        SiteInfo {
            start_url,
            rdn,
            mld,
            index_text,
            kind,
        }
    }

    /// A realistic landing path: URL feeds contain deep links (articles,
    /// products, CMS scripts with queries), not just front pages.
    fn landing_path(&mut self, kind: SiteKind, language: Language) -> String {
        let word = slugify(lexicon::sample_words(&mut self.rng, language, 1)[0]);
        let word = if word.is_empty() {
            "page".to_owned()
        } else {
            word
        };
        let id: u32 = self.rng.gen_range(10..9999);
        match (kind, self.rng.gen_range(0..10)) {
            // Front page.
            (_, 0..=3) => String::new(),
            (SiteKind::News, 4..=6) => format!("news/2015/{word}-{id}.html"),
            (SiteKind::News, _) => format!("article.php?id={id}&ref={word}"),
            (SiteKind::Blog, 4..=6) => format!("2015/09/{word}.html"),
            (SiteKind::Blog, _) => format!("index.php?p={id}"),
            (SiteKind::Shop, 4..=6) => format!("product/{word}-{id}.html"),
            (SiteKind::Shop, _) => format!("shop.php?item={id}&cat={word}"),
            (_, 4..=6) => format!("{word}.html"),
            (_, 7..=8) => format!("pages/{word}/{id}"),
            _ => format!("index.php?page={word}"),
        }
    }

    /// A short URL redirecting to `landing` (cross-RDN chain).
    fn shortener_entry(&mut self, world: &mut WebWorld, landing: &str) -> String {
        let shortener = *SHORTENER_RDNS.choose(&mut self.rng).expect("shorteners");
        let code: String = (0..6)
            .map(|_| (b'a' + self.rng.gen_range(0u8..26)) as char)
            .collect();
        let from = format!("http://{shortener}/{code}");
        world.add_redirect(&from, landing);
        from
    }

    /// A blog on a shared hosting platform: content identity lives in the
    /// subdomain and page, the RDN belongs to the platform.
    fn platform_blog(&mut self, world: &mut WebWorld, language: Language) -> SiteInfo {
        let platform = *PLATFORM_RDNS.choose(&mut self.rng).expect("platforms");
        let author = self.fresh_mld();
        let host = format!("{author}.{platform}");
        let landing = format!("https://{host}/");
        let identity_str = kyp_text::extract_terms(&author).join(" ");

        let mut text_parts: Vec<String> = Vec::new();
        for _ in 0..self.rng.gen_range(4..8) {
            let mut s = lexicon::sample_sentence(&mut self.rng, language, 10, 0);
            if self.rng.gen_bool(0.5) && !identity_str.is_empty() {
                s.push(' ');
                s.push_str(&identity_str);
            }
            text_parts.push(s);
        }
        let title = format!("{identity_str} — {platform}");
        let mut page = PageBuilder::new()
            .title(&title)
            .heading(&format!("{} {identity_str}", language.welcome()))
            // Platform assets live on the platform's CDN, not the blog host.
            .stylesheet(&format!("https://static.{platform}/theme.css"))
            .script(&format!("https://static.{platform}/platform.js"));
        for p in &text_parts {
            page = page.paragraph(p);
        }
        for _ in 0..self.rng.gen_range(1..4) {
            let word = *language
                .common_words()
                .choose(&mut self.rng)
                .expect("words");
            page = page.link(&format!("/{}", slugify(word)), word);
        }
        if self.rng.gen_bool(0.5) {
            page = page.image(&format!("https://static.{platform}/banner.png"));
        }
        let html = page.build();
        world.add_page(&landing, Page::new(html));

        let mld = platform.split('.').next().unwrap_or(platform).to_owned();
        SiteInfo {
            start_url: landing,
            rdn: platform.to_owned(),
            mld,
            index_text: format!("{title} {}", text_parts.join(" ")),
            kind: SiteKind::PlatformBlog,
        }
    }

    /// A parked domain page: the near-empty, ad-laden tail the paper
    /// reports as its main false-positive source.
    fn parked_site(&mut self, world: &mut WebWorld, language: Language) -> SiteInfo {
        let mld = self.fresh_mld();
        let suffix = *lexicon::legit_suffixes(language)
            .choose(&mut self.rng)
            .expect("suffixes");
        let rdn = format!("{mld}.{suffix}");
        let landing = format!("http://{rdn}/");
        let identity_str = kyp_text::extract_terms(&mld).join(" ");
        let ad_network = *["adgrid.net", "clickyield.com", "parkzone.co"]
            .choose(&mut self.rng)
            .expect("ad networks");

        let title = format!("{rdn} — domain parked");
        let mut page = PageBuilder::new()
            .title(&title)
            .paragraph("this domain may be for sale")
            .script(&format!("https://{ad_network}/serve.js"));
        // Concentrated external ad links, like a phish funnelling to its
        // target.
        for i in 0..self.rng.gen_range(2..5) {
            page = page.link(
                &format!("https://{ad_network}/click?slot={i}"),
                "sponsored listing",
            );
        }
        if self.rng.gen_bool(0.5) {
            page = page.image(&format!("https://{ad_network}/banner.png"));
        }
        if self.rng.gen_bool(0.3) {
            page = page.form("/search", &["query"]);
        }
        let html = page.build();
        world.add_page(&landing, Page::new(html));

        SiteInfo {
            start_url: landing,
            rdn,
            mld,
            index_text: format!("{title} {identity_str} parked domain"),
            kind: SiteKind::ParkedLike,
        }
    }

    /// A minimal splash/login page (webmail, intranet portal).
    fn splash_site(&mut self, world: &mut WebWorld, language: Language) -> SiteInfo {
        let mld = self.fresh_mld();
        let suffix = *lexicon::legit_suffixes(language)
            .choose(&mut self.rng)
            .expect("suffixes");
        let rdn = format!("{mld}.{suffix}");
        let host = if self.rng.gen_bool(0.5) {
            format!("mail.{rdn}")
        } else {
            rdn.clone()
        };
        let landing = format!("https://{host}/login");
        let identity_str = kyp_text::extract_terms(&mld).join(" ");
        let service = language.service_words();
        let title = format!(
            "{identity_str} {}",
            service.choose(&mut self.rng).expect("service")
        );
        let sentence = lexicon::sample_sentence(&mut self.rng, language, 3, 2);
        let mut page = PageBuilder::new()
            .title(&title)
            .heading(&identity_str)
            .paragraph(&sentence)
            .stylesheet("/login.css")
            .form("/session", &["username", "password"]);
        if self.rng.gen_bool(0.5) {
            page = page.copyright(&format!("© 2015 {identity_str}"));
        }
        let html = page.build();
        world.add_page(&landing, Page::new(html));

        SiteInfo {
            start_url: landing.clone(),
            rdn,
            mld,
            index_text: format!("{title} {sentence} {identity_str}"),
            kind: SiteKind::Splash,
        }
    }

    /// A unique, plausible mld: one or two tokens, occasionally awkward
    /// shapes the paper's Section VII-B discusses (long concatenations,
    /// hyphens, digits).
    fn fresh_mld(&mut self) -> String {
        let a = *lexicon::DOMAIN_TOKENS
            .choose(&mut self.rng)
            .expect("tokens");
        let b = *lexicon::DOMAIN_TOKENS
            .choose(&mut self.rng)
            .expect("tokens");
        let id = self.counter;
        match self.rng.gen_range(0..10) {
            // Long concatenation without separators ("theinstantexchange").
            0 => format!("the{a}{b}x{id}"),
            // Hyphenated.
            1 | 2 => format!("{a}-{b}{id}"),
            // Short with digit ("dl4a" shape).
            3 => format!("{}{id}{}", &a[..2.min(a.len())], &b[..1]),
            // Plain compound.
            _ => format!("{a}{b}{id}"),
        }
    }
}

fn slugify(word: &str) -> String {
    kyp_text::extract_terms(word).join("-")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brands::BrandCorpus;
    use kyp_web::Browser;

    #[test]
    fn brand_site_scrapes_cleanly() {
        let corpus = BrandCorpus::standard();
        let mut world = WebWorld::new();
        let mut generator = SiteGenerator::new(1);
        let info = generator.brand_site(&mut world, corpus.cyclic(0), Language::English);
        let visit = Browser::new(&world).visit(&info.start_url).unwrap();
        assert_eq!(visit.landing_url.rdn().as_deref(), Some(info.rdn.as_str()));
        assert!(!visit.text.is_empty());
        assert!(!visit.title.is_empty());
        assert!(!visit.href_links.is_empty());
    }

    #[test]
    fn brand_site_is_term_consistent() {
        let corpus = BrandCorpus::standard();
        let brand = corpus.by_name("paypago").unwrap();
        let mut world = WebWorld::new();
        let mut generator = SiteGenerator::new(3);
        // Generate several, check one that mentions the brand.
        for _ in 0..5 {
            let info = generator.brand_site(&mut world, brand, Language::English);
            let visit = Browser::new(&world).visit(&info.start_url).unwrap();
            let text_lower = visit.text.to_lowercase();
            if text_lower.contains("paypago") {
                assert_eq!(visit.landing_url.mld(), Some("paypago"));
                return;
            }
        }
        panic!("no generated page mentioned the brand");
    }

    #[test]
    fn generic_sites_have_unique_domains() {
        // Platform blogs intentionally share the platform RDN; every other
        // site must get a fresh registered domain.
        let mut world = WebWorld::new();
        let mut generator = SiteGenerator::new(9);
        let mut rdns = std::collections::HashSet::new();
        for _ in 0..50 {
            let info = generator.generic_site(&mut world, Language::German);
            if info.kind != SiteKind::PlatformBlog {
                assert!(rdns.insert(info.rdn.clone()), "duplicate rdn {}", info.rdn);
            }
        }
    }

    #[test]
    fn hard_legit_tails_are_generated() {
        let mut world = WebWorld::new();
        let mut generator = SiteGenerator::new(21);
        let mut kinds = std::collections::HashSet::new();
        let mut cross_rdn_entry = 0;
        for _ in 0..200 {
            let info = generator.generic_site(&mut world, Language::English);
            kinds.insert(info.kind);
            let visit = Browser::new(&world).visit(&info.start_url).unwrap();
            let chain_rdns: std::collections::HashSet<_> = visit
                .redirection_chain
                .iter()
                .filter_map(kyp_url::Url::rdn)
                .collect();
            if chain_rdns.len() > 1 {
                cross_rdn_entry += 1;
            }
        }
        assert!(kinds.contains(&SiteKind::PlatformBlog));
        assert!(kinds.contains(&SiteKind::Splash));
        assert!(cross_rdn_entry > 0, "shortener entries must occur");
    }

    #[test]
    fn generic_sites_scrape_in_all_languages() {
        for (i, lang) in Language::ALL.into_iter().enumerate() {
            let mut world = WebWorld::new();
            let mut generator = SiteGenerator::new(100 + i as u64);
            for _ in 0..5 {
                let info = generator.generic_site(&mut world, lang);
                let visit = Browser::new(&world).visit(&info.start_url).unwrap();
                assert!(!visit.text.is_empty(), "{} page empty", lang.name());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen_once = |seed| {
            let mut world = WebWorld::new();
            let mut generator = SiteGenerator::new(seed);
            (0..10)
                .map(|_| generator.generic_site(&mut world, Language::Spanish).rdn)
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_once(5), gen_once(5));
        assert_ne!(gen_once(5), gen_once(6));
    }

    #[test]
    fn redirects_stay_on_same_rdn() {
        let corpus = BrandCorpus::standard();
        let mut world = WebWorld::new();
        let mut generator = SiteGenerator::new(11);
        for i in 0..20 {
            let info = generator.brand_site(&mut world, corpus.cyclic(i), Language::English);
            let visit = Browser::new(&world).visit(&info.start_url).unwrap();
            let rdns: std::collections::HashSet<_> = visit
                .redirection_chain
                .iter()
                .filter_map(kyp_url::Url::rdn)
                .collect();
            assert_eq!(rdns.len(), 1, "legit chains stay on one RDN");
        }
    }
}
