//! Corpus statistics: structural summaries of generated datasets, used by
//! the Table V census and for sanity-checking generator realism.

use kyp_url::Url;
use kyp_web::{Browser, VisitedPage, WebWorld};
use std::collections::BTreeMap;

/// Aggregate structural statistics of a set of scraped pages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PageSetStats {
    /// Number of pages summarised.
    pub pages: usize,
    /// Pages whose landing URL uses HTTPS.
    pub https_pages: usize,
    /// Pages hosted on a raw IP.
    pub ip_hosted: usize,
    /// Pages whose redirection chain crosses more than one RDN.
    pub cross_rdn_redirects: usize,
    /// Pages with at least one credential-style input field.
    pub with_forms: usize,
    /// Mean count of terms in the body text.
    pub mean_text_terms: f64,
    /// Mean number of HREF links per page.
    pub mean_href_links: f64,
    /// Mean fraction of links (logged + HREF) that are internal.
    pub mean_internal_ratio: f64,
    /// Histogram of redirection-chain lengths.
    pub chain_lengths: BTreeMap<usize, usize>,
}

impl PageSetStats {
    /// Summarises the given visited pages.
    pub fn from_visits<'a, I: IntoIterator<Item = &'a VisitedPage>>(visits: I) -> Self {
        let mut stats = PageSetStats::default();
        let mut text_terms = 0usize;
        let mut href_links = 0usize;
        let mut internal_ratio_sum = 0.0;
        let mut ratio_pages = 0usize;
        for v in visits {
            stats.pages += 1;
            if v.landing_url.is_https() {
                stats.https_pages += 1;
            }
            if v.landing_url.host().is_ip() {
                stats.ip_hosted += 1;
            }
            let chain_rdns: std::collections::HashSet<String> = v
                .redirection_chain
                .iter()
                .map(|u| u.rdn().unwrap_or_else(|| u.host().to_string()))
                .collect();
            if chain_rdns.len() > 1 {
                stats.cross_rdn_redirects += 1;
            }
            if v.input_count > 0 {
                stats.with_forms += 1;
            }
            text_terms += kyp_text::extract_terms(&v.text).len();
            href_links += v.href_links.len();
            let (int_log, ext_log) = v.logged_split();
            let (int_href, ext_href) = v.href_split();
            let internal = int_log.len() + int_href.len();
            let total = internal + ext_log.len() + ext_href.len();
            if total > 0 {
                // kyp-lint: allow(D06) — visits arrive in stored order, so the sum order is fixed
                internal_ratio_sum += internal as f64 / total as f64;
                ratio_pages += 1;
            }
            *stats
                .chain_lengths
                .entry(v.redirection_chain.len())
                .or_insert(0) += 1;
        }
        if stats.pages > 0 {
            stats.mean_text_terms = text_terms as f64 / stats.pages as f64;
            stats.mean_href_links = href_links as f64 / stats.pages as f64;
        }
        if ratio_pages > 0 {
            stats.mean_internal_ratio = internal_ratio_sum / ratio_pages as f64;
        }
        stats
    }

    /// Scrapes `urls` from `world` and summarises the successful visits.
    pub fn from_urls(world: &WebWorld, urls: &[String]) -> Self {
        let browser = Browser::new(world);
        let visits: Vec<VisitedPage> = urls.iter().filter_map(|u| browser.visit(u).ok()).collect();
        Self::from_visits(visits.iter())
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{} pages | https {:.0}% | ip {:.1}% | cross-rdn redirect {:.0}% | forms {:.0}% | \
             {:.0} text terms | {:.1} href links | internal {:.0}%",
            self.pages,
            pct(self.https_pages, self.pages),
            pct(self.ip_hosted, self.pages),
            pct(self.cross_rdn_redirects, self.pages),
            pct(self.with_forms, self.pages),
            self.mean_text_terms,
            self.mean_href_links,
            self.mean_internal_ratio * 100.0,
        )
    }
}

fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Convenience: RDN of a URL string (diagnostics).
pub fn rdn_of(url: &str) -> Option<String> {
    Url::parse(url).ok().and_then(|u| u.rdn())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CampaignConfig, Corpus};

    #[test]
    fn phish_and_legit_stats_differ_in_the_documented_directions() {
        let corpus = Corpus::generate(&CampaignConfig::tiny());
        let phish_urls: Vec<String> = corpus.phish_test.iter().map(|r| r.url.clone()).collect();
        let phish = PageSetStats::from_urls(&corpus.world, &phish_urls);
        let legit = PageSetStats::from_urls(&corpus.world, corpus.english_test());

        assert_eq!(phish.pages, phish_urls.len());
        // The paper's structural claims, now measurable:
        assert!(
            phish.with_forms as f64 / phish.pages as f64
                > legit.with_forms as f64 / legit.pages as f64,
            "phish harvest credentials more often"
        );
        assert!(
            phish.mean_text_terms < legit.mean_text_terms,
            "phish carry less text ({} vs {})",
            phish.mean_text_terms,
            legit.mean_text_terms
        );
        assert!(
            phish.mean_internal_ratio < legit.mean_internal_ratio,
            "phish load more external content"
        );
        assert!(
            pct(phish.cross_rdn_redirects, phish.pages)
                > pct(legit.cross_rdn_redirects, legit.pages),
            "phish redirect across RDNs more"
        );
    }

    #[test]
    fn empty_set() {
        let stats = PageSetStats::from_visits(std::iter::empty());
        assert_eq!(stats.pages, 0);
        assert_eq!(stats.mean_text_terms, 0.0);
        assert!(!stats.summary_line().is_empty());
    }

    #[test]
    fn chain_length_histogram_counts_pages() {
        let corpus = Corpus::generate(&CampaignConfig::tiny());
        let stats = PageSetStats::from_urls(&corpus.world, corpus.english_test());
        let total: usize = stats.chain_lengths.values().sum();
        assert_eq!(total, stats.pages);
    }

    #[test]
    fn rdn_helper() {
        assert_eq!(rdn_of("https://www.a.co.uk/x").as_deref(), Some("a.co.uk"));
        assert_eq!(rdn_of("http://"), None);
    }
}
