//! Per-language word pools used by the page generators.
//!
//! The paper's language-independence claim (Table VI covers English,
//! French, German, Portuguese, Italian and Spanish) requires corpora whose
//! term statistics differ per language — including accented characters
//! that exercise the canonicalisation of Section III-B.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The six evaluation languages of the paper's Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    /// English (the training language).
    English,
    /// French.
    French,
    /// German.
    German,
    /// Italian.
    Italian,
    /// Portuguese.
    Portuguese,
    /// Spanish.
    Spanish,
}

impl Language {
    /// All six languages, English first (the paper trains on English).
    pub const ALL: [Language; 6] = [
        Language::English,
        Language::French,
        Language::German,
        Language::Italian,
        Language::Portuguese,
        Language::Spanish,
    ];

    /// Display name used in experiment output (matches Table VI rows).
    pub fn name(&self) -> &'static str {
        match self {
            Language::English => "English",
            Language::French => "French",
            Language::German => "German",
            Language::Italian => "Italian",
            Language::Portuguese => "Portuguese",
            Language::Spanish => "Spanish",
        }
    }

    /// Common prose words of the language (with native diacritics).
    pub fn common_words(&self) -> &'static [&'static str] {
        match self {
            Language::English => EN_COMMON,
            Language::French => FR_COMMON,
            Language::German => DE_COMMON,
            Language::Italian => IT_COMMON,
            Language::Portuguese => PT_COMMON,
            Language::Spanish => ES_COMMON,
        }
    }

    /// Web/service vocabulary (login, account, ...) in the language.
    pub fn service_words(&self) -> &'static [&'static str] {
        match self {
            Language::English => EN_SERVICE,
            Language::French => FR_SERVICE,
            Language::German => DE_SERVICE,
            Language::Italian => IT_SERVICE,
            Language::Portuguese => PT_SERVICE,
            Language::Spanish => ES_SERVICE,
        }
    }

    /// ISO-639-ish path code used for localised site sections
    /// (`brand.com/fr/...`); empty for English (the default section).
    pub fn path_code(&self) -> &'static str {
        match self {
            Language::English => "",
            Language::French => "fr",
            Language::German => "de",
            Language::Italian => "it",
            Language::Portuguese => "pt",
            Language::Spanish => "es",
        }
    }

    /// The language's "welcome" phrase for page headings.
    pub fn welcome(&self) -> &'static str {
        match self {
            Language::English => "Welcome to",
            Language::French => "Bienvenue sur",
            Language::German => "Willkommen bei",
            Language::Italian => "Benvenuto su",
            Language::Portuguese => "Bem-vindo ao",
            Language::Spanish => "Bienvenido a",
        }
    }
}

/// Samples `n` words from the language's prose pool.
pub fn sample_words<R: Rng>(rng: &mut R, language: Language, n: usize) -> Vec<&'static str> {
    let pool = language.common_words();
    (0..n)
        .map(|_| *pool.choose(rng).expect("non-empty pool"))
        .collect()
}

/// Samples a sentence of `n` prose words with `k` service words mixed in.
pub fn sample_sentence<R: Rng>(rng: &mut R, language: Language, n: usize, k: usize) -> String {
    let mut words: Vec<&str> = sample_words(rng, language, n);
    let service = language.service_words();
    for _ in 0..k {
        let pos = rng.gen_range(0..=words.len());
        words.insert(pos, service.choose(rng).expect("non-empty pool"));
    }
    words.join(" ")
}

/// ASCII-only short tokens for generated domain names.
pub const DOMAIN_TOKENS: &[&str] = &[
    "web", "net", "data", "info", "media", "tech", "digital", "online", "portal", "hub", "group",
    "lab", "soft", "apps", "cloud", "host", "link", "zone", "base", "core", "prime", "smart",
    "fast", "easy", "true", "blue", "red", "green", "nord", "star", "alpha", "delta", "omega",
    "metro", "urban", "terra", "aqua", "solar", "lunar", "pixel",
];

/// Public suffixes used for generated legitimate domains, per language.
pub fn legit_suffixes(language: Language) -> &'static [&'static str] {
    match language {
        Language::English => &["com", "org", "net", "io", "co", "us", "info"],
        Language::French => &["fr", "com", "net", "org"],
        Language::German => &["de", "com", "net", "org"],
        Language::Italian => &["it", "com", "net", "org"],
        Language::Portuguese => &["pt", "com.br", "com", "net"],
        Language::Spanish => &["es", "com", "net", "com.ar"],
    }
}

/// Cheap/abused suffixes phishers favour.
pub const PHISH_SUFFIXES: &[&str] = &[
    "tk", "ml", "ga", "cf", "gq", "xyz", "top", "pw", "info", "click",
];

const EN_COMMON: &[&str] = &[
    "the",
    "house",
    "world",
    "people",
    "time",
    "year",
    "market",
    "report",
    "story",
    "water",
    "family",
    "music",
    "garden",
    "travel",
    "school",
    "street",
    "mountain",
    "river",
    "company",
    "weather",
    "morning",
    "evening",
    "winter",
    "summer",
    "football",
    "theatre",
    "kitchen",
    "holiday",
    "science",
    "history",
    "nature",
    "village",
    "island",
    "doctor",
    "teacher",
    "window",
    "bridge",
    "forest",
    "animal",
    "flower",
    "coffee",
    "dinner",
    "letter",
    "number",
    "picture",
    "question",
    "answer",
    "moment",
    "reason",
    "project",
    "student",
    "culture",
    "economy",
    "election",
    "government",
    "industry",
    "quality",
    "journey",
    "library",
    "museum",
];
const EN_SERVICE: &[&str] = &[
    "login", "account", "secure", "password", "payment", "billing", "support", "service", "update",
    "verify", "signin", "customer", "profile", "settings", "checkout", "wallet",
];

const FR_COMMON: &[&str] = &[
    "maison",
    "monde",
    "gens",
    "temps",
    "année",
    "marché",
    "rapport",
    "histoire",
    "eau",
    "famille",
    "musique",
    "jardin",
    "voyage",
    "école",
    "rue",
    "montagne",
    "rivière",
    "société",
    "météo",
    "matin",
    "soir",
    "hiver",
    "été",
    "théâtre",
    "cuisine",
    "vacances",
    "science",
    "nature",
    "village",
    "île",
    "médecin",
    "professeur",
    "fenêtre",
    "pont",
    "forêt",
    "animal",
    "fleur",
    "café",
    "dîner",
    "lettre",
    "numéro",
    "image",
    "question",
    "réponse",
    "moment",
    "raison",
    "projet",
    "étudiant",
    "culture",
    "économie",
    "élection",
    "gouvernement",
    "industrie",
    "qualité",
    "bibliothèque",
    "musée",
    "santé",
    "journée",
];
const FR_SERVICE: &[&str] = &[
    "connexion",
    "compte",
    "sécurisé",
    "motdepasse",
    "paiement",
    "facturation",
    "assistance",
    "service",
    "miseàjour",
    "vérifier",
    "identifiant",
    "client",
    "profil",
    "paramètres",
];

const DE_COMMON: &[&str] = &[
    "haus",
    "welt",
    "leute",
    "zeit",
    "jahr",
    "markt",
    "bericht",
    "geschichte",
    "wasser",
    "familie",
    "musik",
    "garten",
    "reise",
    "schule",
    "straße",
    "berg",
    "fluss",
    "firma",
    "wetter",
    "morgen",
    "abend",
    "winter",
    "sommer",
    "fußball",
    "theater",
    "küche",
    "urlaub",
    "wissenschaft",
    "natur",
    "dorf",
    "insel",
    "arzt",
    "lehrer",
    "fenster",
    "brücke",
    "wald",
    "tier",
    "blume",
    "kaffee",
    "abendessen",
    "brief",
    "nummer",
    "bild",
    "frage",
    "antwort",
    "moment",
    "grund",
    "projekt",
    "student",
    "kultur",
    "wirtschaft",
    "wahl",
    "regierung",
    "industrie",
    "qualität",
    "bibliothek",
    "museum",
    "gesundheit",
];
const DE_SERVICE: &[&str] = &[
    "anmeldung",
    "konto",
    "sicher",
    "passwort",
    "zahlung",
    "rechnung",
    "unterstützung",
    "dienst",
    "aktualisierung",
    "bestätigen",
    "kunde",
    "profil",
    "einstellungen",
    "kasse",
];

const IT_COMMON: &[&str] = &[
    "casa",
    "mondo",
    "gente",
    "tempo",
    "anno",
    "mercato",
    "rapporto",
    "storia",
    "acqua",
    "famiglia",
    "musica",
    "giardino",
    "viaggio",
    "scuola",
    "strada",
    "montagna",
    "fiume",
    "società",
    "meteo",
    "mattina",
    "sera",
    "inverno",
    "estate",
    "calcio",
    "teatro",
    "cucina",
    "vacanza",
    "scienza",
    "natura",
    "villaggio",
    "isola",
    "medico",
    "maestro",
    "finestra",
    "ponte",
    "foresta",
    "animale",
    "fiore",
    "caffè",
    "cena",
    "lettera",
    "numero",
    "immagine",
    "domanda",
    "risposta",
    "momento",
    "ragione",
    "progetto",
    "studente",
    "cultura",
    "economia",
    "elezione",
    "governo",
    "industria",
    "qualità",
    "biblioteca",
    "museo",
    "salute",
    "giornata",
    "città",
];
const IT_SERVICE: &[&str] = &[
    "accesso",
    "conto",
    "sicuro",
    "password",
    "pagamento",
    "fattura",
    "assistenza",
    "servizio",
    "aggiornamento",
    "verificare",
    "cliente",
    "profilo",
    "impostazioni",
];

const PT_COMMON: &[&str] = &[
    "casa",
    "mundo",
    "pessoas",
    "tempo",
    "ano",
    "mercado",
    "relatório",
    "história",
    "água",
    "família",
    "música",
    "jardim",
    "viagem",
    "escola",
    "rua",
    "montanha",
    "rio",
    "empresa",
    "clima",
    "manhã",
    "noite",
    "inverno",
    "verão",
    "futebol",
    "teatro",
    "cozinha",
    "férias",
    "ciência",
    "natureza",
    "aldeia",
    "ilha",
    "médico",
    "professor",
    "janela",
    "ponte",
    "floresta",
    "animal",
    "flor",
    "café",
    "jantar",
    "carta",
    "número",
    "imagem",
    "pergunta",
    "resposta",
    "momento",
    "razão",
    "projeto",
    "estudante",
    "cultura",
    "economia",
    "eleição",
    "governo",
    "indústria",
    "qualidade",
    "biblioteca",
    "museu",
    "saúde",
    "cidade",
    "coração",
];
const PT_SERVICE: &[&str] = &[
    "entrar",
    "conta",
    "seguro",
    "senha",
    "pagamento",
    "fatura",
    "suporte",
    "serviço",
    "atualização",
    "verificar",
    "cliente",
    "perfil",
    "configurações",
    "carteira",
];

const ES_COMMON: &[&str] = &[
    "casa",
    "mundo",
    "gente",
    "tiempo",
    "año",
    "mercado",
    "informe",
    "historia",
    "agua",
    "familia",
    "música",
    "jardín",
    "viaje",
    "escuela",
    "calle",
    "montaña",
    "río",
    "empresa",
    "clima",
    "mañana",
    "noche",
    "invierno",
    "verano",
    "fútbol",
    "teatro",
    "cocina",
    "vacaciones",
    "ciencia",
    "naturaleza",
    "pueblo",
    "isla",
    "médico",
    "profesor",
    "ventana",
    "puente",
    "bosque",
    "animal",
    "flor",
    "café",
    "cena",
    "carta",
    "número",
    "imagen",
    "pregunta",
    "respuesta",
    "momento",
    "razón",
    "proyecto",
    "estudiante",
    "cultura",
    "economía",
    "elección",
    "gobierno",
    "industria",
    "calidad",
    "biblioteca",
    "museo",
    "salud",
    "ciudad",
    "corazón",
];
const ES_SERVICE: &[&str] = &[
    "acceso",
    "cuenta",
    "seguro",
    "contraseña",
    "pago",
    "factura",
    "soporte",
    "servicio",
    "actualización",
    "verificar",
    "cliente",
    "perfil",
    "ajustes",
    "cartera",
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn all_languages_have_pools() {
        for lang in Language::ALL {
            assert!(lang.common_words().len() >= 50, "{}", lang.name());
            assert!(lang.service_words().len() >= 10, "{}", lang.name());
            assert!(!lang.welcome().is_empty());
            assert!(!legit_suffixes(lang).is_empty());
        }
    }

    #[test]
    fn non_english_pools_carry_diacritics() {
        for lang in [
            Language::French,
            Language::German,
            Language::Italian,
            Language::Portuguese,
            Language::Spanish,
        ] {
            let has_accents = lang.common_words().iter().any(|w| !w.is_ascii());
            assert!(
                has_accents,
                "{} pool should exercise canonicalisation",
                lang.name()
            );
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(
            sample_sentence(&mut a, Language::French, 10, 2),
            sample_sentence(&mut b, Language::French, 10, 2)
        );
    }

    #[test]
    fn sentence_mixes_service_words() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = sample_sentence(&mut rng, Language::English, 5, 3);
        assert_eq!(s.split(' ').count(), 8);
    }

    #[test]
    fn suffixes_are_valid_psl_entries() {
        for lang in Language::ALL {
            for s in legit_suffixes(lang) {
                assert!(kyp_url::psl::is_public_suffix(s), "{s}");
            }
        }
        for s in PHISH_SUFFIXES {
            assert!(kyp_url::psl::is_public_suffix(s), "{s}");
        }
    }
}
