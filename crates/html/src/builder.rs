//! A small HTML page builder used by the synthetic-web generators.
//!
//! Keeps the generated markup realistic (head/body structure, forms,
//! embedded resources) and guarantees it round-trips through
//! [`Document::parse`](crate::Document::parse).

use std::fmt::Write as _;

/// Builds an HTML page incrementally.
///
/// # Examples
///
/// ```
/// use kyp_html::{Document, PageBuilder};
///
/// let html = PageBuilder::new()
///     .title("Example Bank")
///     .heading("Welcome")
///     .paragraph("Access your account.")
///     .link("/login", "Sign in")
///     .image("/logo.png")
///     .copyright("© 2015 Example Bank Inc.")
///     .build();
/// let doc = Document::parse(&html);
/// assert_eq!(doc.title(), "Example Bank");
/// assert_eq!(doc.image_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageBuilder {
    title: String,
    head_resources: Vec<String>,
    body: String,
}

impl PageBuilder {
    /// Creates an empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the `<title>`.
    pub fn title(mut self, title: &str) -> Self {
        self.title = escape(title);
        self
    }

    /// Adds a stylesheet `<link>` in the head.
    pub fn stylesheet(mut self, href: &str) -> Self {
        self.head_resources.push(format!(
            r#"<link rel="stylesheet" href="{}">"#,
            escape(href)
        ));
        self
    }

    /// Adds a `<script src>` in the head.
    pub fn script(mut self, src: &str) -> Self {
        self.head_resources
            .push(format!(r#"<script src="{}"></script>"#, escape(src)));
        self
    }

    /// Adds an `<h1>` heading.
    pub fn heading(mut self, text: &str) -> Self {
        let _ = writeln!(self.body, "<h1>{}</h1>", escape(text));
        self
    }

    /// Adds a paragraph of text.
    pub fn paragraph(mut self, text: &str) -> Self {
        let _ = writeln!(self.body, "<p>{}</p>", escape(text));
        self
    }

    /// Adds an anchor.
    pub fn link(mut self, href: &str, anchor: &str) -> Self {
        let _ = writeln!(
            self.body,
            r#"<a href="{}">{}</a>"#,
            escape(href),
            escape(anchor)
        );
        self
    }

    /// Adds an image.
    pub fn image(mut self, src: &str) -> Self {
        let _ = writeln!(self.body, r#"<img src="{}">"#, escape(src));
        self
    }

    /// Adds an iframe.
    pub fn iframe(mut self, src: &str) -> Self {
        let _ = writeln!(self.body, r#"<iframe src="{}"></iframe>"#, escape(src));
        self
    }

    /// Adds a form with the given named input fields.
    pub fn form(mut self, action: &str, fields: &[&str]) -> Self {
        let _ = write!(
            self.body,
            r#"<form action="{}" method="post">"#,
            escape(action)
        );
        for f in fields {
            let kind = if f.contains("pass") || f.contains("pin") {
                "password"
            } else {
                "text"
            };
            let _ = write!(self.body, r#"<input type="{kind}" name="{}">"#, escape(f));
        }
        let _ = writeln!(self.body, r#"<input type="submit" value="OK"></form>"#);
        self
    }

    /// Adds a footer copyright notice.
    pub fn copyright(mut self, notice: &str) -> Self {
        let _ = writeln!(self.body, "<footer>{}</footer>", escape(notice));
        self
    }

    /// Adds pre-built raw HTML to the body (trusted input only).
    pub fn raw_body(mut self, html: &str) -> Self {
        self.body.push_str(html);
        self.body.push('\n');
        self
    }

    /// Assembles the final HTML document.
    pub fn build(&self) -> String {
        let mut out = String::with_capacity(self.body.len() + 256);
        out.push_str("<!DOCTYPE html>\n<html><head>\n");
        let _ = writeln!(out, "<title>{}</title>", self.title);
        for r in &self.head_resources {
            out.push_str(r);
            out.push('\n');
        }
        out.push_str("</head>\n<body>\n");
        out.push_str(&self.body);
        out.push_str("</body></html>\n");
        out
    }
}

/// Escapes text for safe inclusion in HTML content or attribute values.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Document;

    #[test]
    fn roundtrip_through_parser() {
        let html = PageBuilder::new()
            .title("My Bank & Co")
            .stylesheet("/css/a.css")
            .script("https://cdn.x.com/a.js")
            .heading("Welcome")
            .paragraph("Hello there, customer.")
            .link("https://my-bank.com/login", "Sign in")
            .image("/logo.png")
            .iframe("https://ads.net/f")
            .form("/submit", &["user", "password"])
            .copyright("© 2015 My Bank")
            .build();
        let doc = Document::parse(&html);
        assert_eq!(doc.title(), "My Bank & Co");
        assert_eq!(doc.href_links(), ["https://my-bank.com/login"]);
        assert_eq!(doc.image_count(), 1);
        assert_eq!(doc.iframe_count(), 1);
        assert_eq!(doc.input_count(), 2); // submit button is not a data field
        assert!(doc.text().contains("Hello there"));
        assert!(doc.copyright().unwrap().contains("My Bank"));
        assert_eq!(
            doc.resource_links(),
            [
                "/css/a.css",
                "https://cdn.x.com/a.js",
                "/logo.png",
                "https://ads.net/f"
            ]
        );
    }

    #[test]
    fn escaping_prevents_injection() {
        let html = PageBuilder::new()
            .title("<script>alert(1)</script>")
            .paragraph("a < b & c")
            .build();
        let doc = Document::parse(&html);
        assert_eq!(doc.title(), "<script>alert(1)</script>");
        assert!(doc.text().contains("a < b & c"));
        assert!(doc.resource_links().is_empty());
    }

    #[test]
    fn empty_builder_is_valid_page() {
        let doc = Document::parse(&PageBuilder::new().build());
        assert_eq!(doc.title(), "");
        assert_eq!(doc.text(), "");
    }
}
