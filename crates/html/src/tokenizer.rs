//! A forgiving, single-pass HTML tokenizer.
//!
//! Produces a flat stream of start tags (with attributes), end tags and
//! text runs. Comments and doctypes are skipped; the contents of `script`
//! and `style` elements are consumed as raw text and emitted as
//! [`Token::RawText`] so they never pollute the rendered-text extraction.
//!
//! Tokens *borrow* from the input wherever the source bytes can be used
//! verbatim — already-lowercase tag names, entity-free text runs, raw
//! script/style content — and only fall back to owned strings when
//! normalisation (lowercasing, entity decoding) actually changes bytes.
//! On realistic pages that makes tokenization allocation-free outside
//! the attribute vector itself.

use std::borrow::Cow;

/// One token of the HTML input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token<'a> {
    /// `<name attr="value" ...>`; `self_closing` is true for `<br/>`.
    StartTag {
        /// Lowercased tag name (borrowed when already lowercase).
        name: Cow<'a, str>,
        /// Attribute name/value pairs, names lowercased, values
        /// entity-decoded; both borrow the input when unchanged by
        /// normalisation.
        attrs: Vec<(Cow<'a, str>, Cow<'a, str>)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</name>` with the name lowercased.
    EndTag {
        /// Lowercased tag name (borrowed when already lowercase).
        name: Cow<'a, str>,
    },
    /// A run of document text, entity-decoded (borrowed when entity-free).
    Text(Cow<'a, str>),
    /// The raw contents of a `<script>` or `<style>` element, always a
    /// direct slice of the input.
    RawText(&'a str),
}

/// Streaming tokenizer over an HTML string.
///
/// # Examples
///
/// ```
/// use kyp_html::{Token, Tokenizer};
/// let tokens: Vec<Token> = Tokenizer::new("<p>hi</p>").collect();
/// assert_eq!(tokens.len(), 3);
/// assert_eq!(tokens[1], Token::Text("hi".into()));
/// ```
#[derive(Debug)]
pub struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    /// Set when the previous start tag opened a raw-text element
    /// (`script`/`style`); holds the closing tag to look for.
    pending_raw: Option<&'static str>,
}

/// Lowercases `s`, borrowing it unchanged when it already is lowercase —
/// the common case for real markup, where tag and attribute names arrive
/// lowercase and need no allocation.
fn lower(s: &str) -> Cow<'_, str> {
    if s.bytes().any(|b| b.is_ascii_uppercase()) {
        Cow::Owned(s.to_ascii_lowercase())
    } else {
        Cow::Borrowed(s)
    }
}

/// Byte offset of the first ASCII-case-insensitive occurrence of `pat` in
/// `haystack`, without allocating a lowercased copy of either.
pub(crate) fn find_ascii_ci(haystack: &str, pat: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let p = pat.as_bytes();
    if p.is_empty() || p.len() > h.len() {
        return None;
    }
    // kyp-lint: allow(P02) — the guard above keeps `p.len() <= h.len()`, so the window stays in bounds
    (0..=h.len() - p.len()).find(|&i| h[i..i + p.len()].eq_ignore_ascii_case(p))
}

impl<'a> Tokenizer<'a> {
    /// Creates a tokenizer over `input`.
    pub fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            pos: 0,
            pending_raw: None,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn take_raw_text(&mut self, close: &str) -> Token<'a> {
        let rest = self.rest();
        if let Some(idx) = find_ascii_ci(rest, close) {
            let content = &rest[..idx];
            self.pos += idx;
            Token::RawText(content)
        } else {
            self.pos = self.input.len();
            Token::RawText(rest)
        }
    }

    fn take_tag(&mut self) -> Option<Token<'a>> {
        // self.rest() starts with '<'.
        let rest = self.rest();
        let bytes = rest.as_bytes();
        if rest.starts_with("<!--") {
            // Comment: skip to -->.
            match rest.find("-->") {
                Some(idx) => self.pos += idx + 3,
                None => self.pos = self.input.len(),
            }
            return self.next();
        }
        if rest.starts_with("<!") || rest.starts_with("<?") {
            // Doctype / processing instruction: skip to '>'.
            match rest.find('>') {
                Some(idx) => self.pos += idx + 1,
                None => self.pos = self.input.len(),
            }
            return self.next();
        }
        let closing = bytes.get(1) == Some(&b'/');
        let name_start = if closing { 2 } else { 1 };
        // A '<' not followed by a letter is literal text.
        match bytes.get(name_start) {
            Some(c) if c.is_ascii_alphabetic() => {}
            _ => {
                self.pos += 1;
                return Some(Token::Text(Cow::Borrowed(&rest[..1])));
            }
        }
        // An unterminated tag at end of input is the signature of a
        // truncated fetch: salvage the partial tag (name plus any complete
        // attributes) instead of leaking raw markup into the text stream.
        let (tag_end, terminated) = match rest.find('>') {
            Some(idx) => (idx, true),
            None => (rest.len(), false),
        };
        let inner = &rest[name_start..tag_end];
        self.pos += tag_end + usize::from(terminated);

        let mut chars = inner.char_indices();
        let name_end = chars
            .find(|(_, c)| !c.is_ascii_alphanumeric())
            .map_or(inner.len(), |(i, _)| i);
        let name = lower(&inner[..name_end]);
        if closing {
            return Some(Token::EndTag { name });
        }
        let attr_str = &inner[name_end..];
        let self_closing = attr_str.trim_end().ends_with('/');
        let attrs = parse_attrs(attr_str.trim_end_matches('/'));
        if name == "script" && !self_closing {
            self.pending_raw = Some("</script");
        } else if name == "style" && !self_closing {
            self.pending_raw = Some("</style");
        }
        Some(Token::StartTag {
            name,
            attrs,
            self_closing,
        })
    }
}

impl<'a> Iterator for Tokenizer<'a> {
    type Item = Token<'a>;

    fn next(&mut self) -> Option<Token<'a>> {
        if let Some(close) = self.pending_raw.take() {
            let tok = self.take_raw_text(close);
            if let Token::RawText(t) = tok {
                if t.is_empty() {
                    return self.next();
                }
            }
            return Some(tok);
        }
        if self.pos >= self.input.len() {
            return None;
        }
        if self.rest().starts_with('<') {
            return self.take_tag();
        }
        let rest = self.rest();
        let end = rest.find('<').unwrap_or(rest.len());
        let text = &rest[..end];
        self.pos += end;
        Some(Token::Text(crate::entity::decode_entities(text)))
    }
}

fn parse_attrs(input: &str) -> Vec<(Cow<'_, str>, Cow<'_, str>)> {
    let b = input.as_bytes();
    let mut attrs = Vec::new();
    let mut i = 0;
    let n = b.len();
    while i < n {
        // Skip whitespace between attributes.
        while i < n && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= n {
            break;
        }
        // Attribute name: up to '=', whitespace or end.
        let name_start = i;
        while i < n && b[i] != b'=' && !b[i].is_ascii_whitespace() {
            i += 1;
        }
        let name = lower(&input[name_start..i]);
        // Skip whitespace before a possible '='.
        let mut j = i;
        while j < n && b[j].is_ascii_whitespace() {
            j += 1;
        }
        let mut value = Cow::Borrowed("");
        if j < n && b[j] == b'=' {
            j += 1;
            while j < n && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < n && (b[j] == b'"' || b[j] == b'\'') {
                let quote = b[j];
                j += 1;
                let v_start = j;
                while j < n && b[j] != quote {
                    j += 1;
                }
                value = crate::entity::decode_entities(&input[v_start..j]);
                if j < n {
                    j += 1; // closing quote
                }
            } else {
                let v_start = j;
                while j < n && !b[j].is_ascii_whitespace() {
                    j += 1;
                }
                value = crate::entity::decode_entities(&input[v_start..j]);
            }
            i = j;
        }
        if !name.is_empty() {
            attrs.push((name, value));
        }
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(html: &str) -> Vec<Token<'_>> {
        Tokenizer::new(html).collect()
    }

    fn owned(attrs: &[(Cow<'_, str>, Cow<'_, str>)]) -> Vec<(String, String)> {
        attrs
            .iter()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn simple_element() {
        let toks = tokens("<p>hello</p>");
        assert_eq!(
            toks,
            vec![
                Token::StartTag {
                    name: "p".into(),
                    attrs: vec![],
                    self_closing: false
                },
                Token::Text("hello".into()),
                Token::EndTag { name: "p".into() },
            ]
        );
    }

    #[test]
    fn attributes_quoted_and_unquoted() {
        let toks = tokens(r#"<a href="https://x.com/a" class=link id='z'>go</a>"#);
        match &toks[0] {
            Token::StartTag { name, attrs, .. } => {
                assert_eq!(name, "a");
                assert_eq!(
                    owned(attrs),
                    vec![
                        ("href".to_string(), "https://x.com/a".to_string()),
                        ("class".to_string(), "link".to_string()),
                        ("id".to_string(), "z".to_string()),
                    ]
                );
            }
            t => panic!("unexpected token {t:?}"),
        }
    }

    #[test]
    fn lowercase_input_tokenizes_borrowed() {
        // The hot path: already-normalised markup borrows everything.
        let toks = tokens(r#"<a href="/x">go &amp; stop</a><script>raw</script>"#);
        match &toks[0] {
            Token::StartTag { name, attrs, .. } => {
                assert!(matches!(name, Cow::Borrowed(_)));
                assert!(matches!(attrs[0].0, Cow::Borrowed(_)));
                assert!(matches!(attrs[0].1, Cow::Borrowed(_)));
            }
            t => panic!("unexpected token {t:?}"),
        }
        // Entity-bearing text is owned; entity-free text is borrowed.
        assert!(matches!(&toks[1], Token::Text(Cow::Owned(_))));
        match &toks[2] {
            Token::EndTag { name } => assert!(matches!(name, Cow::Borrowed(_))),
            t => panic!("unexpected token {t:?}"),
        }
        let plain = tokens("<p>plain</p>");
        assert!(matches!(&plain[1], Token::Text(Cow::Borrowed(_))));
    }

    #[test]
    fn self_closing_and_void() {
        let toks = tokens(r#"<img src="/x.png"/><br>"#);
        assert!(matches!(
            &toks[0],
            Token::StartTag { name, self_closing: true, .. } if name == "img"
        ));
        assert!(matches!(
            &toks[1],
            Token::StartTag { name, self_closing: false, .. } if name == "br"
        ));
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let toks = tokens("<!DOCTYPE html><!-- hidden <b>bold</b> -->text");
        assert_eq!(toks, vec![Token::Text("text".into())]);
    }

    #[test]
    fn script_content_is_raw() {
        let toks = tokens("<script>var a = '<p>not html</p>';</script>after");
        assert_eq!(toks.len(), 4);
        assert!(matches!(&toks[1], Token::RawText(t) if t.contains("not html")));
        assert_eq!(toks[3], Token::Text("after".into()));
    }

    #[test]
    fn style_content_is_raw() {
        let toks = tokens("<style>p { color: red }</style>");
        assert!(matches!(&toks[1], Token::RawText(t) if t.contains("color")));
    }

    #[test]
    fn raw_text_close_tag_is_case_insensitive() {
        let toks = tokens("<script>x = 1;</SCRIPT>after");
        assert!(matches!(&toks[1], Token::RawText(t) if t.contains("x = 1")));
        assert_eq!(*toks.last().unwrap(), Token::Text("after".into()));
    }

    #[test]
    fn entities_decoded_in_text() {
        let toks = tokens("<p>a &amp; b</p>");
        assert_eq!(toks[1], Token::Text("a & b".into()));
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokens("1 < 2");
        let text: String = toks
            .iter()
            .filter_map(|t| match t {
                Token::Text(s) => Some(s.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(text, "1 < 2");
    }

    #[test]
    fn unterminated_tag_is_salvaged() {
        let toks = tokens("before <a href=");
        assert_eq!(toks[0], Token::Text("before ".into()));
        assert!(
            matches!(&toks[1], Token::StartTag { name, .. } if name == "a"),
            "partial tag should become a start tag, got {:?}",
            toks[1]
        );
    }

    #[test]
    fn truncated_tag_keeps_complete_attributes() {
        // Cut off mid-attribute-list: the completed href survives.
        let toks = tokens(r#"<a href="https://x.com/a" cla"#);
        match &toks[0] {
            Token::StartTag { name, attrs, .. } => {
                assert_eq!(name, "a");
                assert_eq!(
                    owned(attrs)[0],
                    ("href".to_string(), "https://x.com/a".to_string())
                );
            }
            t => panic!("unexpected token {t:?}"),
        }
    }

    #[test]
    fn truncated_attribute_value_is_salvaged() {
        // Cut off inside a quoted value: what arrived is kept.
        let toks = tokens(r#"<img src="https://cdn.example.net/lo"#);
        match &toks[0] {
            Token::StartTag { name, attrs, .. } => {
                assert_eq!(name, "img");
                assert_eq!(attrs[0].1, "https://cdn.example.net/lo");
            }
            t => panic!("unexpected token {t:?}"),
        }
    }

    #[test]
    fn every_truncation_point_tokenizes_without_panic() {
        let html = r#"<!DOCTYPE html><title>T</title><body><p>a &amp; b</p>
            <a href="https://x.com/a?q=1">link</a><script>var x = '<q>';</script>
            <img src="/i.png"><!-- note --><iframe src="//f.net/x"></iframe>日本語</body>"#;
        for cut in 0..=html.len() {
            if !html.is_char_boundary(cut) {
                continue;
            }
            let toks: Vec<Token> = Tokenizer::new(&html[..cut]).collect();
            // No panic, and no token leaks raw '<tag' markup as text.
            for t in &toks {
                if let Token::Text(s) = t {
                    assert!(
                        !s.trim_start().starts_with("<a ") && !s.contains("<img"),
                        "markup leaked into text at cut {cut}: {s:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn unterminated_script() {
        let toks = tokens("<script>never closed");
        assert!(matches!(&toks[1], Token::RawText(t) if t.contains("never")));
    }

    #[test]
    fn case_insensitive_tags() {
        let toks = tokens("<DIV CLASS=\"x\"></DIV>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "div"));
        assert!(matches!(&toks[1], Token::EndTag { name } if name == "div"));
    }

    #[test]
    fn find_ascii_ci_offsets() {
        assert_eq!(find_ascii_ci("abcDEF", "def"), Some(3));
        assert_eq!(find_ascii_ci("abc", "z"), None);
        assert_eq!(find_ascii_ci("abc", ""), None);
        assert_eq!(find_ascii_ci("ab", "abc"), None);
        assert_eq!(find_ascii_ci("</SCRIPT>", "</script"), Some(0));
    }

    #[test]
    fn empty_input() {
        assert!(tokens("").is_empty());
    }
}
