//! Minimal HTML entity decoding — the named entities our generators emit
//! plus numeric character references.

/// Decodes HTML entities in `input`.
///
/// Handles the common named entities (`&amp;`, `&lt;`, `&gt;`, `&quot;`,
/// `&apos;`, `&nbsp;`, `&copy;`, `&reg;`, accented-letter entities like
/// `&eacute;`) and numeric references (`&#233;`, `&#x00E9;`). Unknown
/// entities are passed through verbatim.
///
/// # Examples
///
/// ```
/// assert_eq!(kyp_html::decode_entities("caf&eacute; &copy; 2015"), "café © 2015");
/// assert_eq!(kyp_html::decode_entities("1 &lt; 2 &amp;&amp; 3 &gt; 2"), "1 < 2 && 3 > 2");
/// ```
pub fn decode_entities(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut rest = input;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        if let Some((c, consumed)) = decode_one(rest) {
            out.push(c);
            rest = &rest[consumed..];
        } else {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

/// Tries to decode a single entity at the start of `s` (which begins with
/// `&`). Returns the character and the number of bytes consumed.
fn decode_one(s: &str) -> Option<(char, usize)> {
    let end = s[1..].find(';')? + 1;
    if end > 12 {
        return None; // entities are short; avoid scanning far ahead
    }
    let name = &s[1..end];
    let c = if let Some(num) = name.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix(['x', 'X']) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            num.parse::<u32>().ok()?
        };
        char::from_u32(code)?
    } else {
        match name {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            "nbsp" => ' ',
            "copy" => '©',
            "reg" => '®',
            "trade" => '™',
            "eacute" => 'é',
            "egrave" => 'è',
            "agrave" => 'à',
            "ccedil" => 'ç',
            "uuml" => 'ü',
            "ouml" => 'ö',
            "auml" => 'ä',
            "szlig" => 'ß',
            "ntilde" => 'ñ',
            "atilde" => 'ã',
            "otilde" => 'õ',
            "iacute" => 'í',
            "oacute" => 'ó',
            "uacute" => 'ú',
            "aacute" => 'á',
            _ => return None,
        }
    };
    Some((c, end + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_entities() {
        assert_eq!(decode_entities("&lt;b&gt;"), "<b>");
        assert_eq!(decode_entities("a &amp; b"), "a & b");
        assert_eq!(decode_entities("&quot;x&quot;"), "\"x\"");
    }

    #[test]
    fn numeric_references() {
        assert_eq!(decode_entities("&#65;"), "A");
        assert_eq!(decode_entities("&#x41;"), "A");
        assert_eq!(decode_entities("&#233;"), "é");
    }

    #[test]
    fn unknown_entity_passes_through() {
        assert_eq!(decode_entities("&bogus; &"), "&bogus; &");
        assert_eq!(decode_entities("fish & chips"), "fish & chips");
    }

    #[test]
    fn accented_entities() {
        assert_eq!(decode_entities("&eacute;&uuml;&ntilde;"), "éüñ");
    }

    #[test]
    fn no_entities_is_identity() {
        assert_eq!(decode_entities("plain text"), "plain text");
        assert_eq!(decode_entities(""), "");
    }

    #[test]
    fn invalid_numeric_reference() {
        assert_eq!(decode_entities("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode_entities("&#1114112;"), "&#1114112;"); // out of range
    }
}
