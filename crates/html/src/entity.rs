//! Minimal HTML entity decoding — the named entities our generators emit
//! plus numeric character references.

use std::borrow::Cow;

/// Decodes HTML entities in `input`.
///
/// Handles the common named entities (`&amp;`, `&lt;`, `&gt;`, `&quot;`,
/// `&apos;`, `&nbsp;`, `&copy;`, `&reg;`, accented-letter entities like
/// `&eacute;`) and numeric references (`&#233;`, `&#x00E9;`). Unknown
/// entities are passed through verbatim.
///
/// Returns [`Cow::Borrowed`] when nothing decodes — the overwhelmingly
/// common case for real page text — so the hot tokenizer path allocates
/// only on inputs that actually contain entities.
///
/// # Examples
///
/// ```
/// assert_eq!(kyp_html::decode_entities("caf&eacute; &copy; 2015"), "café © 2015");
/// assert_eq!(kyp_html::decode_entities("1 &lt; 2 &amp;&amp; 3 &gt; 2"), "1 < 2 && 3 > 2");
/// // Entity-free text is passed through without allocating.
/// assert!(matches!(
///     kyp_html::decode_entities("plain text"),
///     std::borrow::Cow::Borrowed(_)
/// ));
/// ```
pub fn decode_entities(input: &str) -> Cow<'_, str> {
    // Find the first entity that actually decodes; everything up to it is
    // borrowed untouched. Inputs with no decodable entity never allocate.
    let mut search = 0;
    let (first_char, first_pos, first_len) = loop {
        let Some(rel) = input[search..].find('&') else {
            return Cow::Borrowed(input);
        };
        let pos = search + rel;
        if let Some((c, consumed)) = decode_one(&input[pos..]) {
            break (c, pos, consumed);
        }
        search = pos + 1;
    };

    let mut out = String::with_capacity(input.len());
    out.push_str(&input[..first_pos]);
    out.push(first_char);
    let mut rest = &input[first_pos + first_len..];
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        if let Some((c, consumed)) = decode_one(rest) {
            out.push(c);
            rest = &rest[consumed..];
        } else {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    Cow::Owned(out)
}

/// Tries to decode a single entity at the start of `s` (which begins with
/// `&`). Returns the character and the number of bytes consumed.
fn decode_one(s: &str) -> Option<(char, usize)> {
    let end = s[1..].find(';')? + 1;
    if end > 12 {
        return None; // entities are short; avoid scanning far ahead
    }
    let name = &s[1..end];
    let c = if let Some(num) = name.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix(['x', 'X']) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            num.parse::<u32>().ok()?
        };
        char::from_u32(code)?
    } else {
        match name {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            "nbsp" => ' ',
            "copy" => '©',
            "reg" => '®',
            "trade" => '™',
            "eacute" => 'é',
            "egrave" => 'è',
            "agrave" => 'à',
            "ccedil" => 'ç',
            "uuml" => 'ü',
            "ouml" => 'ö',
            "auml" => 'ä',
            "szlig" => 'ß',
            "ntilde" => 'ñ',
            "atilde" => 'ã',
            "otilde" => 'õ',
            "iacute" => 'í',
            "oacute" => 'ó',
            "uacute" => 'ú',
            "aacute" => 'á',
            _ => return None,
        }
    };
    Some((c, end + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_entities() {
        assert_eq!(decode_entities("&lt;b&gt;"), "<b>");
        assert_eq!(decode_entities("a &amp; b"), "a & b");
        assert_eq!(decode_entities("&quot;x&quot;"), "\"x\"");
    }

    #[test]
    fn numeric_references() {
        assert_eq!(decode_entities("&#65;"), "A");
        assert_eq!(decode_entities("&#x41;"), "A");
        assert_eq!(decode_entities("&#233;"), "é");
    }

    #[test]
    fn unknown_entity_passes_through() {
        assert_eq!(decode_entities("&bogus; &"), "&bogus; &");
        assert_eq!(decode_entities("fish & chips"), "fish & chips");
    }

    #[test]
    fn accented_entities() {
        assert_eq!(decode_entities("&eacute;&uuml;&ntilde;"), "éüñ");
    }

    #[test]
    fn no_entities_is_identity() {
        assert_eq!(decode_entities("plain text"), "plain text");
        assert_eq!(decode_entities(""), "");
    }

    #[test]
    fn entity_free_input_is_borrowed() {
        // Zero-allocation pass-through, even with undecodable ampersands.
        for s in ["plain", "", "fish & chips", "&bogus;", "a & b & c"] {
            assert!(matches!(decode_entities(s), Cow::Borrowed(_)), "{s:?}");
        }
        // A decodable entity forces an owned copy.
        assert!(matches!(decode_entities("a &amp; b"), Cow::Owned(_)));
        assert!(matches!(decode_entities("&#65;"), Cow::Owned(_)));
    }

    #[test]
    fn invalid_numeric_reference() {
        assert_eq!(decode_entities("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode_entities("&#1114112;"), "&#1114112;"); // out of range
    }
}
