//! Batch-scoped scratch memory for the HTML hot path.
//!
//! A [`ParseArena`] owns the buffers [`Document::parse_in`] needs while
//! walking a token stream — the body-text and title accumulators plus a
//! tag-name [`Interner`]. Between pages the buffers are *reset, not
//! freed*: a single arena carried through a batch loop amortises every
//! per-page allocation down to the strings the final [`Document`] must
//! own.
//!
//! [`Document`]: crate::Document
//! [`Document::parse_in`]: crate::Document::parse_in
//!
//! # Examples
//!
//! ```
//! use kyp_html::{Document, ParseArena};
//!
//! let mut arena = ParseArena::new();
//! for html in ["<title>A</title>", "<title>B</title>"] {
//!     let doc = Document::parse_in(html, &mut arena);
//!     assert_eq!(doc, Document::parse(html)); // identical output
//! }
//! ```

/// An interned string handle: a dense `u32` that compares in one
/// instruction instead of a byte-wise string compare.
///
/// Symbols are only meaningful relative to the [`Interner`] that issued
/// them. The well-known tag names in [`sym`] are seeded at construction
/// in a fixed order, so their symbols are stable constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub(crate) u32);

/// Symbols of the tag names [`Document::parse_in`] dispatches on, stable
/// because [`Interner::new`] seeds them in this exact order.
///
/// [`Document::parse_in`]: crate::Document::parse_in
pub(crate) mod sym {
    use super::Sym;

    pub(crate) const HEAD: Sym = Sym(0);
    pub(crate) const TITLE: Sym = Sym(1);
    pub(crate) const A: Sym = Sym(2);
    pub(crate) const AREA: Sym = Sym(3);
    pub(crate) const IMG: Sym = Sym(4);
    pub(crate) const SCRIPT: Sym = Sym(5);
    pub(crate) const EMBED: Sym = Sym(6);
    pub(crate) const SOURCE: Sym = Sym(7);
    pub(crate) const AUDIO: Sym = Sym(8);
    pub(crate) const VIDEO: Sym = Sym(9);
    pub(crate) const LINK: Sym = Sym(10);
    pub(crate) const IFRAME: Sym = Sym(11);
    pub(crate) const FRAME: Sym = Sym(12);
    pub(crate) const INPUT: Sym = Sym(13);
    pub(crate) const TEXTAREA: Sym = Sym(14);
    pub(crate) const SELECT: Sym = Sym(15);

    /// Seeding order for [`super::Interner::new`]; index == symbol value.
    pub(crate) const SEED: &[&str] = &[
        "head", "title", "a", "area", "img", "script", "embed", "source", "audio", "video", "link",
        "iframe", "frame", "input", "textarea", "select",
    ];
}

/// A string interner over a sorted probe table — deliberately *not* a
/// hash map, so lookup order can never leak into output (kyp-lint D01).
///
/// Interning the same string twice returns the same [`Sym`]. The table
/// survives page resets (it is a batch-scoped cache: symbol values are
/// only ever compared against the seeded constants, so accumulated
/// entries cannot affect output).
#[derive(Debug, Clone)]
pub struct Interner {
    /// Symbol-indexed storage: `strings[sym.0]` is the interned text.
    strings: Vec<String>,
    /// Indices into `strings`, sorted by the string they point at.
    index: Vec<u32>,
}

impl Interner {
    /// Creates an interner pre-seeded with the well-known tag names.
    pub fn new() -> Self {
        let mut interner = Interner {
            strings: Vec::with_capacity(sym::SEED.len() * 2),
            index: Vec::with_capacity(sym::SEED.len() * 2),
        };
        for name in sym::SEED {
            interner.intern(name);
        }
        interner
    }

    /// Returns the symbol for `s`, interning it on first sight.
    pub fn intern(&mut self, s: &str) -> Sym {
        match self
            .index
            // kyp-lint: allow(P02) — `index` holds only ids handed out by `strings.len()` below
            .binary_search_by(|&i| self.strings[i as usize].as_str().cmp(s))
        {
            // kyp-lint: allow(P02) — binary_search `Ok` positions are in bounds by contract
            Ok(pos) => Sym(self.index[pos]),
            Err(pos) => {
                let id = u32::try_from(self.strings.len()).unwrap_or(u32::MAX);
                self.strings.push(s.to_owned());
                self.index.insert(pos, id);
                Sym(id)
            }
        }
    }

    /// The text behind a symbol issued by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.strings.get(sym.0 as usize).map_or("", String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned (never true: the well-known tag
    /// seed is always present).
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

/// Reusable scratch for [`Document::parse_in`]: text accumulators and the
/// tag-name interner, reset between pages but never shrunk.
///
/// [`Document::parse_in`]: crate::Document::parse_in
#[derive(Debug, Clone)]
pub struct ParseArena {
    /// Body-text accumulator (space-joined trimmed text runs).
    pub(crate) text: String,
    /// Title accumulator.
    pub(crate) title: String,
    /// Batch-scoped tag-name interner.
    pub(crate) interner: Interner,
}

impl ParseArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ParseArena {
            text: String::new(),
            title: String::new(),
            interner: Interner::new(),
        }
    }

    /// Clears the per-page buffers, keeping their capacity (and the
    /// interner's accumulated table) for the next page.
    pub(crate) fn page_reset(&mut self) {
        self.text.clear();
        self.title.clear();
    }
}

impl Default for ParseArena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_symbols_match_constants() {
        let mut i = Interner::new();
        assert_eq!(i.intern("head"), sym::HEAD);
        assert_eq!(i.intern("title"), sym::TITLE);
        assert_eq!(i.intern("select"), sym::SELECT);
        assert_eq!(i.resolve(sym::IFRAME), "iframe");
        assert_eq!(sym::SEED.len(), i.len());
    }

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("custom-tag");
        let b = i.intern("custom-tag");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "custom-tag");
        let c = i.intern("another");
        assert_ne!(a, c);
    }

    #[test]
    fn unknown_symbol_resolves_empty() {
        let i = Interner::new();
        assert_eq!(i.resolve(Sym(9999)), "");
        assert!(!i.is_empty());
    }

    #[test]
    fn page_reset_keeps_interner() {
        let mut arena = ParseArena::new();
        arena.text.push_str("body");
        arena.title.push('t');
        let custom = arena.interner.intern("marquee");
        arena.page_reset();
        assert!(arena.text.is_empty());
        assert!(arena.title.is_empty());
        // The interner table is batch-scoped: still warm after the reset.
        assert_eq!(arena.interner.intern("marquee"), custom);
    }
}
