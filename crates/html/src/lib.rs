#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! A lightweight HTML tokenizer and data-source extractor for the *Know
//! Your Phish* reproduction.
//!
//! The paper's scraper (Section II-C) extracts four elements from a page's
//! HTML source:
//!
//! - **Text** — what is rendered between `<body>` tags,
//! - **Title** — the content of `<title>`,
//! - **HREF links** — outgoing `<a href>` targets,
//! - **Copyright** — the copyright notice inside the text, if any,
//!
//! plus counts of input fields, images and iframes (feature set *f5*) and
//! the URLs of embedded resources (scripts, stylesheets, images, iframes)
//! that a browser would request while loading the page — the raw material
//! of the *logged links* data source.
//!
//! # Examples
//!
//! ```
//! use kyp_html::Document;
//!
//! let doc = Document::parse(r#"
//!   <html><head><title>Example Bank</title></head>
//!   <body><h1>Welcome</h1>
//!     <a href="https://example.com/login">Sign in</a>
//!     <img src="/logo.png">
//!     <p>&copy; 2015 Example Bank Inc.</p>
//!   </body></html>"#);
//! assert_eq!(doc.title(), "Example Bank");
//! assert_eq!(doc.href_links(), ["https://example.com/login"]);
//! assert_eq!(doc.resource_links(), ["/logo.png"]);
//! assert!(doc.copyright().unwrap().contains("Example Bank"));
//! assert_eq!(doc.image_count(), 1);
//! ```

mod arena;
mod builder;
mod document;
mod entity;
mod tokenizer;

pub use arena::{Interner, ParseArena, Sym};
pub use builder::PageBuilder;
pub use document::Document;
pub use entity::decode_entities;
pub use tokenizer::{Token, Tokenizer};
