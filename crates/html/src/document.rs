use crate::arena::{sym, ParseArena};
use crate::tokenizer::{find_ascii_ci, Token, Tokenizer};
use std::borrow::Cow;

/// The data sources extracted from a page's HTML (paper Section II-C).
///
/// See the [crate docs](crate) for an overview and an example.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    title: String,
    text: String,
    href_links: Vec<String>,
    resource_links: Vec<String>,
    copyright: Option<String>,
    input_count: usize,
    image_count: usize,
    iframe_count: usize,
}

impl Document {
    /// Parses HTML source and extracts every data source in one pass.
    ///
    /// The parser is forgiving: unknown tags are ignored, missing `<body>`
    /// means all text outside `<head>` counts as body text, and broken
    /// markup degrades to text.
    pub fn parse(html: &str) -> Self {
        Self::parse_in(html, &mut ParseArena::new())
    }

    /// Parses HTML source reusing `arena`'s buffers. Identical output to
    /// [`Self::parse`]; meant for batch loops, where one arena carried
    /// across thousands of pages amortises the per-page text-assembly
    /// and tag-dispatch allocations.
    pub fn parse_in(html: &str, arena: &mut ParseArena) -> Self {
        arena.page_reset();
        let mut doc = Document::default();
        let mut in_title = false;
        let mut in_head = false;

        for token in Tokenizer::new(html) {
            match token {
                Token::StartTag { name, attrs, .. } => {
                    // One interner probe per tag; dispatch on the symbol.
                    match arena.interner.intern(&name) {
                        sym::HEAD => in_head = true,
                        sym::TITLE => in_title = true,
                        sym::A | sym::AREA => {
                            if let Some(href) = attr(&attrs, "href") {
                                if !href.is_empty() && !href.starts_with('#') {
                                    doc.href_links.push(href.to_owned());
                                }
                            }
                        }
                        sym::IMG => {
                            doc.image_count += 1;
                            if let Some(src) = attr(&attrs, "src") {
                                if !src.is_empty() {
                                    doc.resource_links.push(src.to_owned());
                                }
                            }
                        }
                        sym::SCRIPT | sym::EMBED | sym::SOURCE | sym::AUDIO | sym::VIDEO => {
                            if let Some(src) = attr(&attrs, "src") {
                                if !src.is_empty() {
                                    doc.resource_links.push(src.to_owned());
                                }
                            }
                        }
                        sym::LINK => {
                            if let Some(href) = attr(&attrs, "href") {
                                if !href.is_empty() {
                                    doc.resource_links.push(href.to_owned());
                                }
                            }
                        }
                        sym::IFRAME | sym::FRAME => {
                            doc.iframe_count += 1;
                            if let Some(src) = attr(&attrs, "src") {
                                if !src.is_empty() {
                                    doc.resource_links.push(src.to_owned());
                                }
                            }
                        }
                        sym::INPUT | sym::TEXTAREA | sym::SELECT => {
                            // Only fields that collect user data count
                            // (phishing pages exist to harvest input).
                            let non_data = attr(&attrs, "type").is_some_and(|t| {
                                matches!(t, "hidden" | "submit" | "button" | "reset" | "image")
                            });
                            if !non_data {
                                doc.input_count += 1;
                            }
                        }
                        _ => {}
                    }
                }
                Token::EndTag { name } => match arena.interner.intern(&name) {
                    sym::HEAD => in_head = false,
                    sym::TITLE => in_title = false,
                    _ => {}
                },
                Token::Text(t) => {
                    if in_title {
                        arena.title.push_str(&t);
                    } else if !in_head {
                        // Assemble body text directly in the arena buffer
                        // (what `Vec<String>` + `join(" ")` used to build).
                        let trimmed = t.trim();
                        if !trimmed.is_empty() {
                            if !arena.text.is_empty() {
                                arena.text.push(' ');
                            }
                            arena.text.push_str(trimmed);
                        }
                    }
                }
                Token::RawText(_) => {}
            }
        }

        doc.text.clone_from(&arena.text);
        doc.title = String::from(arena.title.trim());
        doc.copyright = find_copyright(&doc.text);
        doc
    }

    /// The `<title>` content (paper data source *Title*).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The rendered body text (paper data source *Text*).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Raw `href` targets of outgoing links (paper data source *HREF links*).
    pub fn href_links(&self) -> &[String] {
        &self.href_links
    }

    /// Raw URLs of embedded resources a browser would fetch while loading
    /// the page — the seed of the *logged links* data source.
    pub fn resource_links(&self) -> &[String] {
        &self.resource_links
    }

    /// The copyright notice found in the text, if any.
    pub fn copyright(&self) -> Option<&str> {
        self.copyright.as_deref()
    }

    /// Number of visible input fields (feature set *f5*).
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Number of images (feature set *f5*).
    pub fn image_count(&self) -> usize {
        self.image_count
    }

    /// Number of iframes/frames (feature set *f5*).
    pub fn iframe_count(&self) -> usize {
        self.iframe_count
    }
}

fn attr<'t>(attrs: &'t [(Cow<'_, str>, Cow<'_, str>)], name: &str) -> Option<&'t str> {
    attrs
        .iter()
        .find(|(n, _)| n.as_ref() == name)
        .map(|(_, v)| v.as_ref())
}

/// Finds the copyright notice inside rendered text: the sentence-ish
/// segment around `©`, `(c)` or the word "copyright".
fn find_copyright(text: &str) -> Option<String> {
    // Byte offsets must index `text` itself: Unicode lowercasing can
    // change byte lengths, so case-insensitive matching is done in place.
    let idx = text
        .find('©')
        .or_else(|| find_ascii_ci(text, "copyright"))
        .or_else(|| find_ascii_ci(text, "(c)"))?;
    // Expand to segment boundaries (periods or end of string), capped to a
    // reasonable notice length.
    // kyp-lint: allow(P02) — idx/start/end come from find/rfind of `©` and ASCII patterns, so they are char boundaries with start <= idx <= end
    let start = text[..idx].rfind('.').map_or(0, |i| i + 1);
    // kyp-lint: allow(P02) — same boundary argument as above
    let end = text[idx..].find('.').map_or(text.len(), |i| idx + i);
    // kyp-lint: allow(P02) — same boundary argument as above
    let notice = text[start..end].trim();
    let notice: String = notice.chars().take(200).collect();
    (!notice.is_empty()).then_some(notice)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r##"<!DOCTYPE html>
<html><head>
  <title> Example Bank — Sign in </title>
  <link rel="stylesheet" href="/css/main.css">
  <script src="https://cdn.example.net/lib.js"></script>
</head>
<body>
  <h1>Welcome to Example Bank</h1>
  <p>Access your account securely.</p>
  <a href="/accounts">Accounts</a>
  <a href="https://partner.example.org/offers">Offers</a>
  <a href="#top">top</a>
  <form><input type="text" name="user"><input type="password" name="pw">
        <input type="hidden" name="csrf"></form>
  <img src="/img/logo.png"><img src="https://cdn.example.net/hero.jpg">
  <iframe src="https://ads.example.ad/frame"></iframe>
  <footer>© 2015 Example Bank Inc. All rights reserved.</footer>
</body></html>"##;

    #[test]
    fn extracts_title() {
        let doc = Document::parse(PAGE);
        assert_eq!(doc.title(), "Example Bank — Sign in");
    }

    #[test]
    fn extracts_text_without_head_or_scripts() {
        let doc = Document::parse(PAGE);
        assert!(doc.text().contains("Welcome to Example Bank"));
        assert!(doc.text().contains("Access your account securely."));
        assert!(!doc.text().contains("stylesheet"));
        assert!(!doc.text().contains("lib.js"));
    }

    #[test]
    fn arena_reuse_matches_fresh_parse() {
        // One arena across many pages (and many reuses of the same page)
        // must produce exactly what the allocate-fresh path produces.
        let mut arena = ParseArena::new();
        let pages = [
            PAGE,
            "<title>A</title><body>text &amp; more</body>",
            "",
            "<P>UPPER <MARQUEE>legacy</MARQUEE></P>",
        ];
        for _ in 0..3 {
            for html in pages {
                assert_eq!(Document::parse_in(html, &mut arena), Document::parse(html));
            }
        }
    }

    #[test]
    fn truncated_documents_keep_everything_received() {
        // A fetch cut off mid-transfer still yields every data source that
        // arrived before the cut — and never panics, whatever the cut.
        for cut in (0..PAGE.len()).filter(|&c| PAGE.is_char_boundary(c)) {
            let doc = Document::parse(&PAGE[..cut]);
            assert!(doc.href_links().iter().all(|h| !h.is_empty()));
        }
        // Cut right after the first two anchors: both survive.
        let upto = PAGE.find("top</a>").unwrap();
        let doc = Document::parse(&PAGE[..upto]);
        assert_eq!(doc.title(), "Example Bank — Sign in");
        assert_eq!(
            doc.href_links(),
            ["/accounts", "https://partner.example.org/offers"]
        );
        assert!(doc.text().contains("Welcome to Example Bank"));
    }

    #[test]
    fn extracts_href_links_skipping_fragments() {
        let doc = Document::parse(PAGE);
        assert_eq!(
            doc.href_links(),
            ["/accounts", "https://partner.example.org/offers"]
        );
    }

    #[test]
    fn extracts_resource_links() {
        let doc = Document::parse(PAGE);
        assert_eq!(
            doc.resource_links(),
            [
                "/css/main.css",
                "https://cdn.example.net/lib.js",
                "/img/logo.png",
                "https://cdn.example.net/hero.jpg",
                "https://ads.example.ad/frame",
            ]
        );
    }

    #[test]
    fn counts_f5_elements() {
        let doc = Document::parse(PAGE);
        assert_eq!(doc.input_count(), 2, "hidden input must not count");
        assert_eq!(doc.image_count(), 2);
        assert_eq!(doc.iframe_count(), 1);
    }

    #[test]
    fn finds_copyright() {
        let doc = Document::parse(PAGE);
        let c = doc.copyright().unwrap();
        assert!(c.contains("Example Bank Inc"), "got {c:?}");
    }

    #[test]
    fn copyright_word_form() {
        let doc = Document::parse("<body>Copyright 2015 Acme Corp. Other text.</body>");
        assert_eq!(doc.copyright(), Some("Copyright 2015 Acme Corp"));
    }

    #[test]
    fn no_copyright() {
        let doc = Document::parse("<body>hello world</body>");
        assert_eq!(doc.copyright(), None);
    }

    #[test]
    fn empty_page() {
        let doc = Document::parse("");
        assert_eq!(doc.title(), "");
        assert_eq!(doc.text(), "");
        assert!(doc.href_links().is_empty());
        assert_eq!(doc.input_count(), 0);
    }

    #[test]
    fn text_without_body_tag() {
        let doc = Document::parse("<p>loose text</p>");
        assert_eq!(doc.text(), "loose text");
    }

    #[test]
    fn textarea_and_select_count_as_inputs() {
        let doc = Document::parse("<body><textarea></textarea><select></select></body>");
        assert_eq!(doc.input_count(), 2);
    }

    #[test]
    fn entities_in_text_and_title() {
        let doc = Document::parse("<title>A &amp; B</title><body>caf&eacute;</body>");
        assert_eq!(doc.title(), "A & B");
        assert_eq!(doc.text(), "café");
    }
}
