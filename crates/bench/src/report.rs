//! Machine-readable benchmark output (`BENCH_pipeline.json`).
//!
//! The perf-tracking experiments (`exp_table8_timing`,
//! `exp_fig6_scalability`) each contribute one top-level section to a
//! single json file at the repository root, so successive runs — and CI
//! artifacts — give the performance trajectory actual data points instead
//! of stdout tables alone.
//!
//! The vendored `serde_json` stand-in has no `json!` macro, so the small
//! [`object`] / [`float`] / [`uint`] / [`boolean`] constructors here are
//! the building blocks for report values.

use kyp_serve::LatencySummary;
use serde_json::{Number, Value};
use std::fs;
use std::path::Path;

/// Default report location, relative to the working directory (the
/// experiment binaries run from the repo root).
pub const BENCH_REPORT_PATH: &str = "BENCH_pipeline.json";

/// Serving-benchmark report location (`exp_serve_throughput`).
pub const BENCH_SERVE_REPORT_PATH: &str = "BENCH_serve.json";

/// Cluster-benchmark report location (`exp_cluster_throughput`).
pub const BENCH_CLUSTER_REPORT_PATH: &str = "BENCH_cluster.json";

/// Store-benchmark report location (`exp_store_throughput`).
pub const BENCH_STORE_REPORT_PATH: &str = "BENCH_store.json";

/// Cascade-frontier report location (`exp_cascade_frontier`).
pub const BENCH_CASCADE_REPORT_PATH: &str = "BENCH_cascade.json";

/// A json object value from `(key, value)` pairs, in order.
pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// A json float.
pub fn float(v: f64) -> Value {
    Value::Number(Number::Float(v))
}

/// A json non-negative integer.
pub fn uint(v: u64) -> Value {
    Value::Number(Number::PosInt(v))
}

/// A json bool.
pub fn boolean(v: bool) -> Value {
    Value::Bool(v)
}

/// Appends `(key, value)` to an object value; panics on non-objects.
pub fn push_field(obj: &mut Value, key: &str, value: Value) {
    match obj {
        Value::Object(fields) => fields.push((key.to_owned(), value)),
        _ => panic!("push_field on a non-object value"),
    }
}

/// Inserts (or replaces) `section` in the json object stored at `path`,
/// creating the file when absent and preserving every other section.
///
/// Unparseable existing content is discarded rather than propagated — a
/// benchmark must never fail because a previous run was interrupted
/// mid-write.
pub fn write_bench_section(path: &Path, section: &str, value: Value) -> Result<(), std::io::Error> {
    let mut root: Vec<(String, Value)> = fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .and_then(|v| match v {
            Value::Object(fields) => Some(fields),
            _ => None,
        })
        .unwrap_or_default();
    if let Some(slot) = root.iter_mut().find(|(k, _)| k == section) {
        slot.1 = value;
    } else {
        root.push((section.to_owned(), value));
    }
    let text = serde_json::to_string_pretty(&Value::Object(root)).expect("serialize bench report");
    fs::write(path, text + "\n")
}

/// Median / average / throughput summary of one timed batch run.
///
/// `pages_per_sec` is `pages / wall seconds`; `speedup_vs_1` is filled in
/// by the caller once the 1-thread baseline is known.
pub fn timing_entry(threads: usize, pages: usize, wall_secs: f64, speedup_vs_1: f64) -> Value {
    object([
        ("threads", uint(threads as u64)),
        ("pages", uint(pages as u64)),
        ("wall_ms", float(wall_secs * 1e3)),
        (
            "pages_per_sec",
            float(if wall_secs > 0.0 {
                pages as f64 / wall_secs
            } else {
                0.0
            }),
        ),
        ("speedup_vs_1", float(speedup_vs_1)),
    ])
}

/// The report form of a latency percentile summary — the `kyp-serve`
/// histogram's p50/p90/p99 digest as one json object.
pub fn latency_summary_value(summary: &LatencySummary) -> Value {
    object([
        ("count", uint(summary.count)),
        ("mean_ms", float(summary.mean_ms)),
        ("p50_ms", uint(summary.p50_ms)),
        ("p90_ms", uint(summary.p90_ms)),
        ("p99_ms", uint(summary.p99_ms)),
        ("max_ms", uint(summary.max_ms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_merge_and_survive_garbage() {
        let dir = std::env::temp_dir().join("kyp_bench_report_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let _ = fs::remove_file(&path);

        write_bench_section(&path, "a", object([("x", uint(1))])).unwrap();
        write_bench_section(&path, "b", Value::Array(vec![uint(1), uint(2)])).unwrap();
        let root: Value = serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(root.get("a").unwrap().get("x").unwrap().as_u64(), Some(1));
        assert_eq!(
            root.get("b").unwrap().as_array().unwrap()[1].as_u64(),
            Some(2)
        );

        // Overwrite a section, keep the other.
        write_bench_section(&path, "a", object([("x", uint(9))])).unwrap();
        let root: Value = serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(root.get("a").unwrap().get("x").unwrap().as_u64(), Some(9));
        assert_eq!(
            root.get("b").unwrap().as_array().unwrap()[0].as_u64(),
            Some(1)
        );

        // A corrupted file is replaced, not fatal.
        fs::write(&path, "{not json").unwrap();
        write_bench_section(&path, "c", boolean(true)).unwrap();
        let root: Value = serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(root.get("c").unwrap().as_bool(), Some(true));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn timing_entry_computes_throughput() {
        let e = timing_entry(4, 200, 0.5, 2.0);
        assert_eq!(e.get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(e.get("pages_per_sec").unwrap().as_f64(), Some(400.0));
        assert_eq!(e.get("speedup_vs_1").unwrap().as_f64(), Some(2.0));
        let zero = timing_entry(1, 10, 0.0, 1.0);
        assert_eq!(zero.get("pages_per_sec").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn latency_summary_converts_on_known_inputs() {
        // Histogram over 1..=100 ms: p50 hits the (32, 64] bucket bound,
        // p90/p99 clamp to the exact max (see kyp-serve's unit tests).
        let mut h = kyp_serve::LatencyHistogram::new();
        for ms in 1..=100 {
            h.record(ms);
        }
        let v = latency_summary_value(&h.summary());
        assert_eq!(v.get("count").unwrap().as_u64(), Some(100));
        assert_eq!(v.get("p50_ms").unwrap().as_u64(), Some(64));
        assert_eq!(v.get("p90_ms").unwrap().as_u64(), Some(100));
        assert_eq!(v.get("p99_ms").unwrap().as_u64(), Some(100));
        assert_eq!(v.get("max_ms").unwrap().as_u64(), Some(100));
        assert_eq!(v.get("mean_ms").unwrap().as_f64(), Some(50.5));
    }

    #[test]
    fn push_field_appends_in_order() {
        let mut v = object([("a", uint(1))]);
        push_field(&mut v, "b", float(2.5));
        let fields = v.as_object().unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[1].0, "b");
    }
}
