#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Experiment harness for the *Know Your Phish* reproduction.
//!
//! Shared machinery for the per-table/per-figure experiment binaries in
//! `src/bin/` (see DESIGN.md for the experiment index): scraping URL lists
//! into feature datasets, scoring, and formatting the paper's tables.
//!
//! Every binary accepts a `--scale <fraction>` argument (default 0.05)
//! that scales Table V sizes, and `--seed <n>` to vary the corpus.

pub mod harness;
pub mod plot;
pub mod report;
pub mod table;

pub use harness::{scrape_dataset, scrape_visits, EvalArgs, ExperimentEnv, TimedSource};
pub use report::{timing_entry, write_bench_section, BENCH_REPORT_PATH};
pub use table::{fmt_f, print_curve, EvalRow};
