//! Table formatting matching the paper's presentation.

use kyp_ml::metrics::{self, Confusion};

/// One evaluation row: the metrics of Tables VI/VII.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRow {
    /// Row label (language, feature set, system name, ...).
    pub name: String,
    /// Precision at the discrimination threshold.
    pub precision: f64,
    /// Recall at the discrimination threshold.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
    /// False positive rate.
    pub fpr: f64,
    /// Area under the ROC curve.
    pub auc: f64,
}

impl EvalRow {
    /// Computes a row from scores/labels at a threshold.
    pub fn compute(
        name: impl Into<String>,
        scores: &[f64],
        labels: &[bool],
        threshold: f64,
    ) -> Self {
        let c = Confusion::at_threshold(scores, labels, threshold);
        EvalRow {
            name: name.into(),
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
            fpr: c.fpr(),
            auc: metrics::auc(scores, labels),
        }
    }

    /// Prints a header matching [`EvalRow::print`].
    pub fn print_header(label: &str) {
        println!(
            "{label:<14} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "Pre.", "Recall", "F1-score", "FP Rate", "AUC"
        );
    }

    /// Prints the row in the paper's column layout.
    pub fn print(&self) {
        println!(
            "{:<14} {:>9.3} {:>9.3} {:>9.3} {:>9.4} {:>9.3}",
            self.name, self.precision, self.recall, self.f1, self.fpr, self.auc
        );
    }
}

/// Formats a float with `d` decimals (for ad-hoc table cells).
pub fn fmt_f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Prints a `(x, y)` curve as gnuplot-ready data lines with a comment
/// header, used for the figure-series outputs.
pub fn print_curve(title: &str, points: &[(f64, f64)]) {
    println!("# {title}");
    for (x, y) in points {
        println!("{x:.6} {y:.6}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_computation() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let row = EvalRow::compute("test", &scores, &labels, 0.7);
        assert_eq!(row.precision, 1.0);
        assert_eq!(row.recall, 1.0);
        assert_eq!(row.fpr, 0.0);
        assert_eq!(row.auc, 1.0);
        assert_eq!(row.name, "test");
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f(0.12345, 3), "0.123");
        assert_eq!(fmt_f(1.0, 1), "1.0");
    }
}
