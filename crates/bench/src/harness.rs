//! Scrape-and-featurise plumbing shared by the experiment binaries.

use kyp_core::FeatureExtractor;
use kyp_datagen::{CampaignConfig, Corpus};
use kyp_ml::Dataset;
use kyp_serve::PageSource;
use kyp_web::{Browser, FailureCause, ScrapedPage, VisitedPage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Command-line arguments common to every experiment binary.
#[derive(Debug, Clone)]
pub struct EvalArgs {
    /// Fraction of the paper's Table V sizes to generate.
    pub scale: f64,
    /// Corpus seed.
    pub seed: u64,
    /// Thread counts from `--threads` (e.g. `--threads 4` or a sweep
    /// `--threads 1,2,4`). Empty when the flag was not given.
    pub threads: Vec<usize>,
}

impl EvalArgs {
    /// Parses `--scale <f>`, `--seed <n>` and `--threads <n[,n...]>` from
    /// `std::env::args`.
    ///
    /// A single-valued `--threads` immediately becomes the process-wide
    /// [`kyp_exec`] thread count; a comma list is left for the binary to
    /// sweep over. Unknown arguments are ignored so binaries can add
    /// their own.
    pub fn parse() -> Self {
        let mut args = EvalArgs {
            scale: 0.05,
            seed: 2015,
            threads: Vec::new(),
        };
        let mut iter = std::env::args().skip(1);
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--scale" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.scale = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.seed = v;
                    }
                }
                "--threads" => {
                    if let Some(list) = iter.next() {
                        args.threads = list
                            .split(',')
                            .filter_map(|v| v.trim().parse().ok())
                            .filter(|&v| v >= 1)
                            .collect();
                    }
                }
                _ => {}
            }
        }
        if args.threads.len() == 1 {
            kyp_exec::set_threads(args.threads[0]);
        }
        args
    }

    /// The campaign configuration for these arguments.
    pub fn campaign(&self) -> CampaignConfig {
        let mut c = CampaignConfig::scaled(self.scale);
        c.seed = self.seed;
        c
    }
}

/// A generated corpus plus the extractor wired to its domain ranking.
#[derive(Debug)]
pub struct ExperimentEnv {
    /// The generated corpus.
    pub corpus: Corpus,
    /// Feature extractor using the corpus's ranking.
    pub extractor: FeatureExtractor,
}

impl ExperimentEnv {
    /// Generates the corpus for `args` and reports its size on stderr.
    pub fn prepare(args: &EvalArgs) -> Self {
        let cfg = args.campaign();
        eprintln!(
            "[env] generating corpus (scale {:.3}, seed {}): {} phish train, {} phish test, {} leg train, {} English test",
            args.scale, args.seed, cfg.phish_train, cfg.phish_test, cfg.leg_train, cfg.english_test
        );
        let corpus = Corpus::generate(&cfg);
        let extractor = FeatureExtractor::new(corpus.ranker.clone());
        eprintln!("[env] world hosts {} entries", corpus.world_len());
        ExperimentEnv { corpus, extractor }
    }
}

/// A [`PageSource`] decorator that accumulates the wall-clock time spent
/// inside `fetch` — the scrape share of a serving run — so throughput
/// benchmarks can split one aggregate pages/sec figure into scrape time
/// vs. score time (the split the cascade's savings are attributable to).
#[derive(Debug)]
pub struct TimedSource<S> {
    inner: S,
    scrape_nanos: Arc<AtomicU64>,
}

impl<S> TimedSource<S> {
    /// Wraps `inner`. The returned handle reads the accumulated scrape
    /// nanoseconds; it is shared, so it stays readable after a service
    /// consumes the source.
    pub fn new(inner: S) -> (Self, Arc<AtomicU64>) {
        let nanos = Arc::new(AtomicU64::new(0));
        (
            TimedSource {
                inner,
                scrape_nanos: Arc::clone(&nanos),
            },
            nanos,
        )
    }
}

impl<S: PageSource> PageSource for TimedSource<S> {
    fn fetch(&mut self, url: &str) -> Result<ScrapedPage, FailureCause> {
        let t0 = Instant::now();
        let result = self.inner.fetch(url);
        self.scrape_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }
}

/// Scrapes a URL list into visited pages. URLs that fail to load are
/// skipped with a warning (the paper's datasets were cleaned the same
/// way: unavailable pages removed).
pub fn scrape_visits(corpus: &Corpus, urls: &[String]) -> Vec<VisitedPage> {
    let browser = Browser::new(&corpus.world);
    let mut visits = Vec::with_capacity(urls.len());
    for url in urls {
        match browser.visit(url) {
            Ok(v) => visits.push(v),
            Err(e) => eprintln!("[scrape] skipping {url}: {e}"),
        }
    }
    visits
}

/// Scrapes URL lists into a labeled feature dataset
/// (`true` = phishing).
///
/// Visits run serially (the simulated browser is sequential state);
/// feature extraction fans out over the default [`kyp_exec`] pool. Row
/// order — legitimate pages then phishing, failures skipped — and every
/// feature value match the serial path bit for bit.
pub fn scrape_dataset(
    corpus: &Corpus,
    extractor: &FeatureExtractor,
    legitimate: &[String],
    phishing: &[String],
) -> Dataset {
    let browser = Browser::new(&corpus.world);
    let mut visits = Vec::with_capacity(legitimate.len() + phishing.len());
    let mut labels = Vec::with_capacity(legitimate.len() + phishing.len());
    for (urls, label) in [(legitimate, false), (phishing, true)] {
        for url in urls {
            match browser.visit(url) {
                Ok(v) => {
                    visits.push(v);
                    labels.push(label);
                }
                Err(e) => eprintln!("[scrape] skipping {url}: {e}"),
            }
        }
    }
    let rows = extractor.extract_batch(&visits);
    let mut data = Dataset::with_capacity(extractor.feature_count(), rows.len());
    for (features, label) in rows.iter().zip(labels) {
        data.push_row(features, label);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use kyp_core::{DetectorConfig, PhishDetector};
    use kyp_ml::metrics;

    /// End-to-end learnability: on a small corpus, the full 212-feature
    /// detector must separate phish from legitimate pages nearly
    /// perfectly, as in the paper (AUC ≈ 0.99+).
    #[test]
    fn end_to_end_detector_learns() {
        let cfg = CampaignConfig {
            seed: 11,
            phish_train: 120,
            phish_test: 120,
            phish_brand: 10,
            leg_train: 400,
            english_test: 400,
            other_language_test: 10,
        };
        let corpus = Corpus::generate(&cfg);
        let extractor = FeatureExtractor::new(corpus.ranker.clone());

        let train_phish: Vec<String> = corpus.phish_train.iter().map(|r| r.url.clone()).collect();
        let test_phish: Vec<String> = corpus.phish_test.iter().map(|r| r.url.clone()).collect();

        let train = scrape_dataset(&corpus, &extractor, &corpus.leg_train, &train_phish);
        let test = scrape_dataset(&corpus, &extractor, corpus.english_test(), &test_phish);
        assert!(train.len() >= 500);

        let detector = PhishDetector::train(&train, &DetectorConfig::default());
        let scores = detector.score_dataset(&test);
        let auc = metrics::auc(&scores, test.labels());
        assert!(auc > 0.97, "end-to-end AUC too low: {auc}");

        let conf = metrics::Confusion::at_threshold(&scores, test.labels(), 0.7);
        assert!(conf.recall() > 0.8, "recall {}", conf.recall());
        assert!(conf.fpr() < 0.05, "fpr {}", conf.fpr());
    }
}
