//! Minimal ASCII line plots for terminal inspection of the figure
//! experiments (the `.dat` files remain the precise output).

/// Renders `(x, y)` series as an ASCII plot of the given size.
///
/// Each series is drawn with its own glyph (`labels[i].0`); axes are
/// annotated with the data ranges. Intended for quick eyeballing of ROC /
/// precision-recall shapes, not for publication.
///
/// # Examples
///
/// ```
/// use kyp_bench::plot::ascii_plot;
/// let curve = vec![(0.0, 0.0), (0.1, 0.9), (1.0, 1.0)];
/// let art = ascii_plot(&[('*', &curve)], 20, 8);
/// assert!(art.contains('*'));
/// ```
pub fn ascii_plot(series: &[(char, &[(f64, f64)])], width: usize, height: usize) -> String {
    let width = width.max(2);
    let height = height.max(2);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max += 1.0;
    }
    if y_max == y_min {
        y_max += 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (glyph, points) in series {
        for &(x, y) in *points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row; // origin bottom-left
            grid[row][col.min(width - 1)] = *glyph;
        }
    }

    let mut out = String::with_capacity((width + 12) * (height + 2));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>8.3} ")
        } else if i == height - 1 {
            format!("{y_min:>8.3} ")
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{}{:<10.3}{}{:>10.3}\n",
        " ".repeat(10),
        x_min,
        " ".repeat(width.saturating_sub(20)),
        x_max
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_basic_curve() {
        let curve = vec![(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)];
        let art = ascii_plot(&[('o', &curve)], 30, 10);
        assert_eq!(art.matches('o').count(), 3);
        assert!(art.contains("1.000"));
        assert!(art.contains("0.000"));
    }

    #[test]
    fn multiple_series_distinct_glyphs() {
        let a = vec![(0.0, 0.0), (1.0, 1.0)];
        let b = vec![(0.0, 1.0), (1.0, 0.0)];
        let art = ascii_plot(&[('a', &a), ('b', &b)], 20, 8);
        assert!(art.contains('a'));
        assert!(art.contains('b'));
    }

    #[test]
    fn empty_and_degenerate_input() {
        assert_eq!(ascii_plot(&[], 10, 5), "(no data)\n");
        let flat = vec![(0.5, 0.5)];
        let art = ascii_plot(&[('x', &flat)], 10, 5);
        assert!(art.contains('x'));
        let nan = vec![(f64::NAN, 1.0)];
        assert_eq!(ascii_plot(&[('x', &nan)], 10, 5), "(no data)\n");
    }

    #[test]
    fn clamps_tiny_dimensions() {
        let curve = vec![(0.0, 0.0), (1.0, 1.0)];
        let art = ascii_plot(&[('*', &curve)], 0, 0);
        assert!(art.contains('*'));
    }
}
