//! **Fault-tolerance sweep**: how detection quality degrades when the
//! scraper faces an unreliable web.
//!
//! A detector is trained on a clean scrape of the training corpus, then
//! the test set is re-scraped through a [`kyp_web::FlakyWorld`] at
//! injected fault rates from 0% to 50%. At each rate the resilient
//! scraper retries transient errors, honours its per-visit deadline
//! budget and trips per-host circuit breakers; whatever it captures —
//! including partially loaded pages — is featurised with neutral values
//! for the missing sources and scored.
//!
//! Reported per rate: completion rate, degraded-page count, retries,
//! breaker trips, virtual elapsed time and AUC over the completed pages.
//! Everything runs on the virtual clock, so output is reproducible for a
//! seed.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_fault_tolerance -- --scale 0.05`

use kyp_bench::{harness, EvalArgs, ExperimentEnv};
use kyp_core::{DetectorConfig, PhishDetector, ScrapeReport};
use kyp_ml::metrics;
use kyp_web::{FaultPlan, FlakyWorld, ResilientBrowser};

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());

    // Labeled test set: legitimate English pages + phishing pages.
    let mut test: Vec<(String, bool)> = Vec::new();
    test.extend(c.english_test().iter().map(|u| (u.clone(), false)));
    test.extend(c.phish_test.iter().map(|r| (r.url.clone(), true)));

    println!("Fault tolerance: completion and AUC vs injected fault rate");
    println!(
        "({} test pages, fault seed {}, all faults enabled)",
        test.len(),
        args.seed
    );
    println!();
    println!(
        "{:>6}  {:>9}  {:>8}  {:>7}  {:>5}  {:>10}  {:>6}",
        "rate", "completed", "degraded", "retries", "trips", "virt-ms", "AUC"
    );

    let mut clean_auc = None;
    for pct in (0..=50).step_by(10) {
        let rate = pct as f64 / 100.0;
        let plan = FaultPlan::new(args.seed, rate);
        let flaky = FlakyWorld::new(&c.world, plan);
        let mut scraper = ResilientBrowser::new(&flaky);

        let mut report = ScrapeReport::default();
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for (url, label) in &test {
            report.requested += 1;
            match scraper.scrape(url) {
                Ok(page) => {
                    report.completed += 1;
                    if page.availability.is_degraded() {
                        report.degraded += 1;
                    }
                    let features = env
                        .extractor
                        .extract_degraded(&page.visit, &page.availability);
                    scores.push(detector.score(&features));
                    labels.push(*label);
                }
                Err(_) => report.failed += 1,
            }
        }
        report.retries = scraper.total_retries();
        report.breaker_trips = scraper.breaker().trips();
        report.virtual_elapsed_ms = scraper.clock().now_ms();

        let auc = metrics::auc(&scores, &labels);
        let clean = *clean_auc.get_or_insert(auc);
        println!(
            "{:>5.0}%  {:>4}/{:<4}  {:>8}  {:>7}  {:>5}  {:>10}  {:.4}  (Δ {:+.4})",
            rate * 100.0,
            report.completed,
            report.requested,
            report.degraded,
            report.retries,
            report.breaker_trips,
            report.virtual_elapsed_ms,
            auc,
            auc - clean
        );
    }
    println!();
    println!("AUC is computed over the pages each sweep managed to capture;");
    println!("degraded pages are scored from partial sources, not dropped.");
}
