//! Regenerates **Table V** (dataset description): the census of every
//! generated dataset, with phish/legitimate counts per campaign and
//! language.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_table5_datasets -- --scale 0.05`

use kyp_bench::{EvalArgs, ExperimentEnv};

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    println!("Table V: Datasets description (scale {:.3})", args.scale);
    println!("{:<6} {:<12} {:>9}", "Set", "Name", "Count");
    println!(
        "{:<6} {:<12} {:>9}",
        "Phish",
        "phishTrain",
        c.phish_train.len()
    );
    println!("{:<6} {:<12} {:>9}", "", "phishTest", c.phish_test.len());
    let targets: std::collections::HashSet<&str> = c
        .phish_brand
        .iter()
        .filter_map(|r| r.target.as_deref())
        .collect();
    println!(
        "{:<6} {:<12} {:>9}   ({} distinct targets, {} hint-less)",
        "",
        "phishBrand",
        c.phish_brand.len(),
        targets.len(),
        c.phish_brand.iter().filter(|r| r.target.is_none()).count()
    );
    println!("{:<6} {:<12} {:>9}", "Leg", "legTrain", c.leg_train.len());
    for (lang, urls) in &c.language_tests {
        println!("{:<6} {:<12} {:>9}", "", lang.name(), urls.len());
    }

    // The paper notes 43.5% of legitimate test RDNs are Alexa-ranked.
    let mut ranked = 0usize;
    let mut total = 0usize;
    let browser = kyp_web::Browser::new(&c.world);
    for (_, urls) in &c.language_tests {
        for url in urls {
            if let Ok(v) = browser.visit(url) {
                if let Some(rdn) = v.landing_url.rdn() {
                    total += 1;
                    if c.ranker.contains(&rdn) {
                        ranked += 1;
                    }
                }
            }
        }
    }
    println!();
    println!(
        "Legitimate test RDNs in ranking list: {ranked}/{total} ({:.1}%)  [paper: 43.5%]",
        100.0 * ranked as f64 / total.max(1) as f64
    );
    println!("World entries: {}", c.world_len());

    // Structural census (generator sanity; Sections II-A / III-A claims).
    use kyp_datagen::stats::PageSetStats;
    let phish_urls: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    println!();
    println!("Structural statistics:");
    println!(
        "  phishTest : {}",
        PageSetStats::from_urls(&c.world, &phish_urls).summary_line()
    );
    println!(
        "  English   : {}",
        PageSetStats::from_urls(&c.world, c.english_test()).summary_line()
    );
}
