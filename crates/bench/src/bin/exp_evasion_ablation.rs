//! Evasion and design ablations (paper Sections VII-B/C plus the
//! DESIGN.md ablations).
//!
//! 1. **Recall per hosting strategy** — the paper reports IP-based URLs
//!    recalled at only 0.76 vs >0.95 overall (empty FQDN distributions).
//! 2. **Recall per evasion profile** — minimal-text, image-based and
//!    typosquatted-content kits.
//! 3. **Control-split ablation** — re-extract features with the
//!    internal/external link split destroyed (every link treated as
//!    internal) to quantify the contribution of the paper's core
//!    "modeling phisher limitations" idea.
//! 4. **Threshold sweep** — precision/recall/FPR at thresholds 0.1–0.9,
//!    motivating the paper's 0.7 choice.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_evasion_ablation -- --scale 0.05`

use kyp_bench::{harness, EvalArgs, ExperimentEnv};
use kyp_core::{DetectorConfig, PhishDetector};
use kyp_datagen::{BrandCorpus, EvasionProfile, HostingStrategy, Language, PhishGenerator};
use kyp_ml::metrics::Confusion;
use kyp_ml::{Dataset, GbmParams, GradientBoosting};
use kyp_web::{Browser, VisitedPage, WebWorld};

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());

    // ---------- 1. Recall per hosting strategy ----------
    // Fresh controlled cohorts: one per strategy, same brands.
    println!("Recall per hosting strategy (threshold 0.7):");
    let brands = BrandCorpus::standard();
    let cohort = (50.0_f64.max(args.scale * 500.0)) as usize;
    for strategy in HostingStrategy::ALL {
        let mut world = c.world.clone();
        let mut generator = PhishGenerator::new(args.seed ^ 0xABCD);
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(args.seed);
        let mut caught = 0usize;
        let mut total = 0usize;
        for i in 0..cohort {
            // Same evasion mix as the campaigns, so cohorts differ only
            // in hosting.
            let evasion = EvasionProfile {
                minimal_text: rand::Rng::gen_bool(&mut rng, 0.05),
                image_based: rand::Rng::gen_bool(&mut rng, 0.03),
                typo_terms: rand::Rng::gen_bool(&mut rng, 0.03),
                no_brand_hint: false,
                self_contained: rand::Rng::gen_bool(&mut rng, 0.18),
            };
            let site = generator.phish_site(
                &mut world,
                brands.cyclic(i),
                Language::English,
                Some(strategy),
                evasion,
            );
            let Ok(visit) = Browser::new(&world).visit(&site.start_url) else {
                continue;
            };
            total += 1;
            if detector.is_phish(&env.extractor.extract(&visit)) {
                caught += 1;
            }
        }
        println!(
            "  {:<16} {:>5.3}  ({caught}/{total})",
            format!("{strategy:?}"),
            caught as f64 / total.max(1) as f64
        );
    }
    println!("  [paper: IP-based recall 0.76 vs >0.95 overall]");

    // ---------- 2. Recall per evasion profile ----------
    println!();
    println!("Recall per evasion profile (Compromised hosting, threshold 0.7):");
    let profiles: [(&str, EvasionProfile); 4] = [
        ("none", EvasionProfile::default()),
        (
            "minimal_text",
            EvasionProfile {
                minimal_text: true,
                ..EvasionProfile::default()
            },
        ),
        (
            "image_based",
            EvasionProfile {
                image_based: true,
                ..EvasionProfile::default()
            },
        ),
        (
            "typo_terms",
            EvasionProfile {
                typo_terms: true,
                ..EvasionProfile::default()
            },
        ),
    ];
    for (name, profile) in profiles {
        let mut world = c.world.clone();
        let mut generator = PhishGenerator::new(args.seed ^ 0xBEEF);
        let mut caught = 0usize;
        let mut total = 0usize;
        for i in 0..cohort {
            let site = generator.phish_site(
                &mut world,
                brands.cyclic(i),
                Language::English,
                Some(HostingStrategy::Compromised),
                profile,
            );
            let Ok(visit) = Browser::new(&world).visit(&site.start_url) else {
                continue;
            };
            total += 1;
            if detector.is_phish(&env.extractor.extract(&visit)) {
                caught += 1;
            }
        }
        println!(
            "  {name:<16} {:>5.3}  ({caught}/{total})",
            caught as f64 / total.max(1) as f64
        );
    }

    // ---------- 3. Control-split ablation ----------
    println!();
    println!("Control-split ablation (internal/external link split destroyed):");
    let phish_test: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    let test = harness::scrape_dataset(c, &env.extractor, c.english_test(), &phish_test);
    let base_scores = detector.score_dataset(&test);
    let base = Confusion::at_threshold(&base_scores, test.labels(), 0.7);

    let pooled_train = pooled_dataset(&c.world, &env.extractor, &c.leg_train, &phish_train);
    let pooled_test = pooled_dataset(&c.world, &env.extractor, c.english_test(), &phish_test);
    let pooled_model = GradientBoosting::fit(&pooled_train, &GbmParams::default());
    let pooled_scores = pooled_model.predict_dataset(&pooled_test);
    let pooled = Confusion::at_threshold(&pooled_scores, pooled_test.labels(), 0.7);
    println!(
        "  with split    : precision {:.3}  recall {:.3}  fpr {:.5}",
        base.precision(),
        base.recall(),
        base.fpr()
    );
    println!(
        "  without split : precision {:.3}  recall {:.3}  fpr {:.5}",
        pooled.precision(),
        pooled.recall(),
        pooled.fpr()
    );

    // ---------- 4. Threshold sweep ----------
    println!();
    println!("Discrimination threshold sweep (fall model, English test):");
    println!(
        "  {:>9} {:>9} {:>9} {:>10}",
        "Threshold", "Precision", "Recall", "FP Rate"
    );
    for t in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let conf = Confusion::at_threshold(&base_scores, test.labels(), t);
        println!(
            "  {t:>9.1} {:>9.3} {:>9.3} {:>10.5}",
            conf.precision(),
            conf.recall(),
            conf.fpr()
        );
    }
}

/// Extracts features from pages whose redirection chain is extended with
/// every linked URL, destroying the internal/external control split of
/// Section III-A (everything becomes "internal").
fn pooled_dataset(
    world: &WebWorld,
    extractor: &kyp_core::FeatureExtractor,
    legitimate: &[String],
    phishing: &[String],
) -> Dataset {
    let browser = Browser::new(world);
    let mut data = Dataset::new(kyp_core::features::FEATURE_COUNT);
    for (urls, label) in [(legitimate, false), (phishing, true)] {
        for url in urls {
            let Ok(visit) = browser.visit(url) else {
                continue;
            };
            data.push_row(&extractor.extract(&pool_links(visit)), label);
        }
    }
    data
}

fn pool_links(mut visit: VisitedPage) -> VisitedPage {
    let extra: Vec<_> = visit
        .logged_links
        .iter()
        .chain(&visit.href_links)
        .cloned()
        .collect();
    visit.redirection_chain.extend(extra);
    visit
}
