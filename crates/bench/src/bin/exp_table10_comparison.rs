//! Regenerates **Table X** (comparison with the state of the art) against
//! the same corpus.
//!
//! Rows:
//! - *Our method (English, old/new)* — the paper's headline row: train on
//!   the old sets, test on phishTest + English;
//! - *Our method (several, old/new)* — all six language test sets;
//! - *Our method (cross-valid)* — 5-fold CV on the training sets;
//! - *Cantina* — TF-IDF + search engine, no learning;
//! - *URL-lexical (Ma et al. style)* — online LR over URL features;
//! - *Bag-of-words (Whittaker et al. style)* — hashed lexical LR.
//!
//! Learned baselines get the same training budget as our method, which is
//! the paper's point: at small training sizes the 212-feature system
//! dominates the data-hungry lexical models.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_table10_comparison -- --scale 0.05`

use kyp_baselines::{BagOfWords, BaselineDetector, Cantina, UrlLexical};
use kyp_bench::{harness, EvalArgs, EvalRow, ExperimentEnv};
use kyp_core::{DetectorConfig, PhishDetector};
use kyp_ml::{cv, GbmParams, GradientBoosting};
use kyp_text::tfidf::Corpus as TfIdfCorpus;
use kyp_web::VisitedPage;
use std::sync::Arc;

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    // --- Scraped bundles (shared by every system).
    let phish_train_urls: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let phish_test_urls: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();

    let train_leg = harness::scrape_visits(c, &c.leg_train);
    let train_phish = harness::scrape_visits(c, &phish_train_urls);
    let test_phish = harness::scrape_visits(c, &phish_test_urls);
    let test_english = harness::scrape_visits(c, c.english_test());
    let mut test_all_lang: Vec<VisitedPage> = Vec::new();
    for (_, urls) in &c.language_tests {
        test_all_lang.extend(harness::scrape_visits(c, urls));
    }

    let featurize = |pages: &[VisitedPage], label: bool, data: &mut kyp_ml::Dataset| {
        for p in pages {
            data.push_row(&env.extractor.extract(p), label);
        }
    };
    let mut train = kyp_ml::Dataset::new(kyp_core::features::FEATURE_COUNT);
    featurize(&train_leg, false, &mut train);
    featurize(&train_phish, true, &mut train);

    println!("Table X: Phishing detection system performances comparison (threshold 0.7 for our method, 0.5 for baselines)");
    EvalRow::print_header("Technique");

    // --- Our method, English old/new.
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let eval_ours = |pages_leg: &[VisitedPage]| {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for p in pages_leg {
            scores.push(detector.score(&env.extractor.extract(p)));
            labels.push(false);
        }
        for p in &test_phish {
            scores.push(detector.score(&env.extractor.extract(p)));
            labels.push(true);
        }
        (scores, labels)
    };
    let (s, l) = eval_ours(&test_english);
    EvalRow::compute("Ours (English)", &s, &l, 0.7).print();
    let (s, l) = eval_ours(&test_all_lang);
    EvalRow::compute("Ours (several)", &s, &l, 0.7).print();
    let (s, l) = cv::cross_validate_par(&train, 5, args.seed, |tr, te| {
        GradientBoosting::fit(tr, &GbmParams::default()).predict_dataset(te)
    });
    EvalRow::compute("Ours (CV)", &s, &l, 0.7).print();

    // --- Baselines, same training budget, tested on English + phishTest.
    let eval_baseline = |det: &dyn BaselineDetector| {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for p in &test_english {
            scores.push(det.score(p));
            labels.push(false);
        }
        for p in &test_phish {
            scores.push(det.score(p));
            labels.push(true);
        }
        EvalRow::compute(det.name(), &scores, &labels, 0.5).print();
    };

    // Cantina: document frequencies from the legitimate training crawl.
    let mut df = TfIdfCorpus::new();
    for p in &train_leg {
        df.add_document(&format!("{} {}", p.title, p.text));
    }
    let cantina = Cantina::new(Arc::new(c.engine.clone()), df);
    eval_baseline(&cantina);

    let mut training_pairs: Vec<(VisitedPage, bool)> = Vec::new();
    training_pairs.extend(train_leg.iter().cloned().map(|p| (p, false)));
    training_pairs.extend(train_phish.iter().cloned().map(|p| (p, true)));

    let mut url_lex = UrlLexical::new();
    url_lex.train(&training_pairs, 5);
    eval_baseline(&url_lex);

    let mut bow = BagOfWords::new();
    bow.train(&training_pairs, 5);
    eval_baseline(&bow);
    println!();
    println!(
        "Bag-of-words model size: {} non-zero weights (the paper's point: lexical models need far larger training corpora)",
        bow.model_size()
    );
}
