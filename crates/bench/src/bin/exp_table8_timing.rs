//! Regenerates **Table VIII** (processing time per pipeline stage) and
//! benchmarks the batch-scoring hot path, before vs after the flat
//! single-core rewrite.
//!
//! First measures, per page: webpage scraping (the simulated browser
//! visit), loading data (json round-trip of the scraped bundle, as the
//! paper's scraper stores json files), feature extraction, and
//! classification. Reports median / average / standard deviation in
//! milliseconds.
//!
//! Then sweeps `--threads` (default `1,2,4`) over the batch pipeline.
//! Each sweep point runs the hot path **twice**:
//!
//! - **baseline** — the pre-rewrite implementation kept alive for
//!   measurement: per-page feature extraction with freshly allocated
//!   scratch plus the boxed-enum Gradient Boosting tree walk
//!   ([`PhishDetector::score_reference`]);
//! - **flat** — scratch-reusing chunked extraction
//!   ([`FeatureExtractor::extract_batch`]) plus the compiled SoA model
//!   ([`PhishDetector::score_batch`]), with the arena-backed scrape
//!   stage timed alongside.
//!
//! The two verdict streams must be bit-identical to each other and
//! across every thread count (`outputs_identical`), and the per-stage
//! walls (scrape / extract / score) are recorded per sweep point in
//! `BENCH_pipeline.json`. A sweep point where the flat path fails to
//! beat the baseline prints a warning to stderr.
//!
//! Absolute numbers will beat the paper's Python prototype by orders of
//! magnitude (Rust, simulated network); the expected *shape* holds:
//! scraping ≫ feature extraction ≫ loading ≈ classification.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_table8_timing -- --scale 0.02 --threads 1,2,4`
//!
//! [`FeatureExtractor::extract_batch`]: kyp_core::FeatureExtractor::extract_batch
//! [`PhishDetector::score_reference`]: kyp_core::PhishDetector::score_reference
//! [`PhishDetector::score_batch`]: kyp_core::PhishDetector::score_batch

use kyp_bench::{harness, report, EvalArgs, ExperimentEnv};
use kyp_core::{DataSources, DetectorConfig, PhishDetector};
use kyp_html::ParseArena;
use kyp_web::{Browser, VisitedPage};
use std::path::Path;
use std::time::Instant;

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());

    // Timing sample: a mix of phish and legitimate pages.
    let mut sample: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    sample.extend(c.english_test().iter().take(sample.len() * 4).cloned());

    let browser = Browser::new(&c.world);
    let mut t_scrape = Vec::with_capacity(sample.len());
    let mut t_load = Vec::with_capacity(sample.len());
    let mut t_features = Vec::with_capacity(sample.len());
    let mut t_classify = Vec::with_capacity(sample.len());
    let mut visits = Vec::with_capacity(sample.len());

    for url in &sample {
        let t0 = Instant::now();
        let Ok(visit) = browser.visit(url) else {
            continue;
        };
        t_scrape.push(ms(t0));

        // "Loading data": the scraper stores json; the classifier loads it.
        let json = serde_json::to_string(&visit).expect("serialize visit");
        let t1 = Instant::now();
        let visit: VisitedPage = serde_json::from_str(&json).expect("deserialize visit");
        t_load.push(ms(t1));

        let t2 = Instant::now();
        let sources = DataSources::from_page(&visit);
        let features = env.extractor.extract_with_sources(&visit, &sources);
        t_features.push(ms(t2));

        let t3 = Instant::now();
        let _ = detector.is_phish(&features);
        t_classify.push(ms(t3));
        visits.push(visit);
    }

    println!(
        "Table VIII: Processing time (milliseconds, {} pages)",
        t_scrape.len()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "", "Median", "Average", "StDev"
    );
    print_row("Webpage scraping", &t_scrape);
    print_row("Loading data", &t_load);
    print_row("Features extraction", &t_features);
    print_row("Classification", &t_classify);
    let total: Vec<f64> = t_load
        .iter()
        .zip(&t_features)
        .zip(&t_classify)
        .map(|((a, b), c)| a + b + c)
        .collect();
    print_row("Total (no scraping)", &total);

    // --- Batch-scoring thread sweep: baseline vs flat hot path ----------
    let sweep = if args.threads.is_empty() {
        vec![1, 2, 4]
    } else {
        args.threads.clone()
    };

    println!();
    println!(
        "Batch hot-path sweep ({} pages, best of {REPS} reps per point)",
        visits.len()
    );
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>12} {:>10}",
        "Threads", "Base pages/s", "Flat pages/s", "Flat gain", "Scrape ms", "Identical"
    );

    let mut first_flat_wall: Option<f64> = None;
    let mut cross_point_scores: Option<Vec<u64>> = None;
    let mut cross_point_model: Option<String> = None;
    let mut entries = Vec::new();
    let mut all_identical = true;
    let hardware_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    for &threads in &sweep {
        kyp_exec::set_threads(threads);
        // Requesting more workers than the machine has cores can't speed
        // anything up — the sweep point is still *correct* (bit-identical
        // outputs), but its speedup_vs_1 reads below 1 for scheduling
        // reasons, not algorithmic ones. Flag it instead of silently
        // reporting a regression.
        let oversubscribed = threads > hardware_threads;
        if oversubscribed {
            eprintln!(
                "warning: sweep point --threads {threads} oversubscribes the machine \
                 ({hardware_threads} hardware threads available); its speedup_vs_1 \
                 measures scheduler contention, not the pipeline"
            );
        }

        // Baseline pass: per-page extraction (fresh scratch each page)
        // scored through the boxed-enum tree walk.
        let mut base_extract = f64::INFINITY;
        let mut base_score = f64::INFINITY;
        let mut base_scores: Vec<f64> = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let rows: Vec<Vec<f64>> =
                kyp_exec::pool().par_map(&visits, |v| env.extractor.extract(v));
            let extract_s = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let run: Vec<f64> = kyp_exec::pool().par_map(&rows, |f| detector.score_reference(f));
            let score_s = t1.elapsed().as_secs_f64();
            if extract_s + score_s < base_extract + base_score {
                base_extract = extract_s;
                base_score = score_s;
            }
            base_scores = run;
        }
        let base_wall = base_extract + base_score;

        // Flat pass: scratch-reusing chunked extraction + compiled SoA
        // batch inference.
        let mut flat_extract = f64::INFINITY;
        let mut flat_score = f64::INFINITY;
        let mut flat_scores: Vec<f64> = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let rows = env.extractor.extract_batch(&visits);
            let extract_s = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let run: Vec<f64> = kyp_exec::pool()
                .par_chunks(&rows, SCORE_CHUNK, |_, chunk| detector.score_batch(chunk))
                .into_iter()
                .flatten()
                .collect();
            let score_s = t1.elapsed().as_secs_f64();
            if extract_s + score_s < flat_extract + flat_score {
                flat_extract = extract_s;
                flat_score = score_s;
            }
            flat_scores = run;
        }
        let flat_wall = flat_extract + flat_score;

        // Scrape stage: the arena-backed parse path, one arena per chunk.
        let mut scrape_wall = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let scraped: usize = kyp_exec::pool()
                .par_chunks(&sample, SCRAPE_CHUNK, |_, urls| {
                    let mut arena = ParseArena::new();
                    urls.iter()
                        .filter(|url| browser.try_visit_in(url, &mut arena).is_ok())
                        .count()
                })
                .into_iter()
                .sum();
            let elapsed = t0.elapsed().as_secs_f64();
            assert!(scraped >= visits.len(), "arena scrape lost pages");
            if elapsed < scrape_wall {
                scrape_wall = elapsed;
            }
        }

        let t_train = Instant::now();
        let trained = PhishDetector::train(&train, &DetectorConfig::default());
        let train_wall_ms = t_train.elapsed().as_secs_f64() * 1e3;
        let model_json = serde_json::to_string(&trained).expect("serialize model");

        // Bit-identity: flat vs baseline within the point, and both vs
        // the first sweep point (thread-count invariance), plus the
        // retrained model.
        let flat_bits: Vec<u64> = flat_scores.iter().map(|s| s.to_bits()).collect();
        let base_bits: Vec<u64> = base_scores.iter().map(|s| s.to_bits()).collect();
        let identical = match (&cross_point_scores, &cross_point_model) {
            (None, None) => {
                let same = flat_bits == base_bits;
                cross_point_scores = Some(flat_bits);
                cross_point_model = Some(model_json);
                same
            }
            (Some(first_bits), Some(first_model)) => {
                flat_bits == base_bits && *first_bits == flat_bits && *first_model == model_json
            }
            _ => unreachable!("cross-point baselines are set together"),
        };
        all_identical &= identical;

        let speedup = match first_flat_wall {
            None => {
                first_flat_wall = Some(flat_wall);
                1.0
            }
            Some(first) => first / flat_wall,
        };

        let pages = visits.len() as f64;
        let base_pps = pages / base_wall;
        let flat_pps = pages / flat_wall;
        if flat_pps <= base_pps {
            eprintln!(
                "warning: flat hot path did not beat the baseline at --threads {threads} \
                 ({flat_pps:.0} <= {base_pps:.0} pages/sec)"
            );
        }

        println!(
            "{threads:>8} {base_pps:>14.0} {flat_pps:>14.0} {:>10.2} {:>12.1} {identical:>10}",
            flat_pps / base_pps,
            scrape_wall * 1e3,
        );
        let mut entry = report::timing_entry(threads, visits.len(), flat_wall, speedup);
        report::push_field(
            &mut entry,
            "baseline_pages_per_sec",
            report::float(base_pps),
        );
        report::push_field(&mut entry, "flat_pages_per_sec", report::float(flat_pps));
        report::push_field(
            &mut entry,
            "flat_speedup_vs_baseline",
            report::float(flat_pps / base_pps),
        );
        report::push_field(
            &mut entry,
            "baseline_extract_wall_ms",
            report::float(base_extract * 1e3),
        );
        report::push_field(
            &mut entry,
            "baseline_score_wall_ms",
            report::float(base_score * 1e3),
        );
        report::push_field(
            &mut entry,
            "scrape_wall_ms",
            report::float(scrape_wall * 1e3),
        );
        report::push_field(
            &mut entry,
            "extract_wall_ms",
            report::float(flat_extract * 1e3),
        );
        report::push_field(&mut entry, "score_wall_ms", report::float(flat_score * 1e3));
        report::push_field(&mut entry, "train_wall_ms", report::float(train_wall_ms));
        report::push_field(&mut entry, "outputs_identical", report::boolean(identical));
        report::push_field(
            &mut entry,
            "oversubscribed",
            report::boolean(oversubscribed),
        );
        entries.push(entry);
    }
    kyp_exec::set_threads(0); // back to auto-detection

    assert!(
        all_identical,
        "flat and baseline scoring must be bit-identical at every thread count"
    );

    let section = report::object([
        ("scale", report::float(args.scale)),
        ("seed", report::uint(args.seed)),
        ("pages", report::uint(visits.len() as u64)),
        (
            "available_parallelism",
            report::uint(hardware_threads as u64),
        ),
        ("sweep", serde_json::Value::Array(entries)),
    ]);
    let path = Path::new(report::BENCH_REPORT_PATH);
    report::write_bench_section(path, "table8_timing", section).expect("write bench report");
    println!();
    println!("Sweep written to {}", path.display());
}

/// Timing repetitions per sweep point (wall time takes the minimum).
const REPS: usize = 3;

/// Rows scored per flat-inference chunk in the thread sweep.
const SCORE_CHUNK: usize = 256;

/// URLs visited per arena in the scrape-stage timing.
const SCRAPE_CHUNK: usize = 32;

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn print_row(label: &str, values: &[f64]) {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = if sorted.is_empty() {
        0.0
    } else {
        sorted[sorted.len() / 2]
    };
    let avg = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let var =
        values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / values.len().max(1) as f64;
    println!(
        "{label:<22} {median:>10.4} {avg:>10.4} {:>10.4}",
        var.sqrt()
    );
}
