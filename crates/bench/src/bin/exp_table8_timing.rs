//! Regenerates **Table VIII** (processing time per pipeline stage) and
//! benchmarks multi-threaded batch scoring.
//!
//! Measures, per page: webpage scraping (the simulated browser visit),
//! loading data (json round-trip of the scraped bundle, as the paper's
//! scraper stores json files), feature extraction, and classification.
//! Reports median / average / standard deviation in milliseconds.
//!
//! Then sweeps `--threads` (default `1,2,4`) over the batch-scoring path
//! — parallel feature extraction + Gradient Boosting scoring on the
//! `kyp-exec` pool — and over detector training, verifying the scores and
//! the fitted model are bit-identical at every thread count, and writes
//! the machine-readable summary to `BENCH_pipeline.json` at the repo
//! root.
//!
//! Absolute numbers will beat the paper's Python prototype by orders of
//! magnitude (Rust, simulated network); the expected *shape* holds:
//! scraping ≫ feature extraction ≫ loading ≈ classification.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_table8_timing -- --scale 0.02 --threads 1,2,4`

use kyp_bench::{harness, report, EvalArgs, ExperimentEnv};
use kyp_core::{DataSources, DetectorConfig, PhishDetector};
use kyp_web::{Browser, VisitedPage};
use std::path::Path;
use std::time::Instant;

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());

    // Timing sample: a mix of phish and legitimate pages.
    let mut sample: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    sample.extend(c.english_test().iter().take(sample.len() * 4).cloned());

    let browser = Browser::new(&c.world);
    let mut t_scrape = Vec::with_capacity(sample.len());
    let mut t_load = Vec::with_capacity(sample.len());
    let mut t_features = Vec::with_capacity(sample.len());
    let mut t_classify = Vec::with_capacity(sample.len());
    let mut visits = Vec::with_capacity(sample.len());

    for url in &sample {
        let t0 = Instant::now();
        let Ok(visit) = browser.visit(url) else {
            continue;
        };
        t_scrape.push(ms(t0));

        // "Loading data": the scraper stores json; the classifier loads it.
        let json = serde_json::to_string(&visit).expect("serialize visit");
        let t1 = Instant::now();
        let visit: VisitedPage = serde_json::from_str(&json).expect("deserialize visit");
        t_load.push(ms(t1));

        let t2 = Instant::now();
        let sources = DataSources::from_page(&visit);
        let features = env.extractor.extract_with_sources(&visit, &sources);
        t_features.push(ms(t2));

        let t3 = Instant::now();
        let _ = detector.is_phish(&features);
        t_classify.push(ms(t3));
        visits.push(visit);
    }

    println!(
        "Table VIII: Processing time (milliseconds, {} pages)",
        t_scrape.len()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "", "Median", "Average", "StDev"
    );
    print_row("Webpage scraping", &t_scrape);
    print_row("Loading data", &t_load);
    print_row("Features extraction", &t_features);
    print_row("Classification", &t_classify);
    let total: Vec<f64> = t_load
        .iter()
        .zip(&t_features)
        .zip(&t_classify)
        .map(|((a, b), c)| a + b + c)
        .collect();
    print_row("Total (no scraping)", &total);

    // --- Batch-scoring thread sweep -------------------------------------
    let sweep = if args.threads.is_empty() {
        vec![1, 2, 4]
    } else {
        args.threads.clone()
    };

    println!();
    println!(
        "Batch scoring sweep ({} pages, best of {REPS} reps per point)",
        visits.len()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14} {:>10}",
        "Threads", "Score ms", "Pages/sec", "Speedup", "Train ms", "Identical"
    );

    let mut baseline_wall: Option<f64> = None;
    let mut baseline_scores: Option<Vec<u64>> = None;
    let mut baseline_model: Option<String> = None;
    let mut entries = Vec::new();
    let mut all_identical = true;
    let hardware_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    for &threads in &sweep {
        kyp_exec::set_threads(threads);
        // Requesting more workers than the machine has cores can't speed
        // anything up — the sweep point is still *correct* (bit-identical
        // outputs), but its speedup_vs_1 reads below 1 for scheduling
        // reasons, not algorithmic ones. Flag it instead of silently
        // reporting a regression.
        let oversubscribed = threads > hardware_threads;
        if oversubscribed {
            eprintln!(
                "warning: sweep point --threads {threads} oversubscribes the machine \
                 ({hardware_threads} hardware threads available); its speedup_vs_1 \
                 measures scheduler contention, not the pipeline"
            );
        }

        let mut wall = f64::INFINITY;
        let mut scores: Vec<f64> = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let rows = env.extractor.extract_batch(&visits);
            let run: Vec<f64> = kyp_exec::pool().par_map(&rows, |f| detector.score(f));
            let elapsed = t0.elapsed().as_secs_f64();
            if elapsed < wall {
                wall = elapsed;
            }
            scores = run;
        }

        let t_train = Instant::now();
        let trained = PhishDetector::train(&train, &DetectorConfig::default());
        let train_wall_ms = t_train.elapsed().as_secs_f64() * 1e3;
        let model_json = serde_json::to_string(&trained).expect("serialize model");

        let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
        let identical = match (&baseline_scores, &baseline_model) {
            (None, None) => {
                baseline_scores = Some(bits);
                baseline_model = Some(model_json);
                true
            }
            (Some(base_bits), Some(base_model)) => *base_bits == bits && *base_model == model_json,
            _ => unreachable!("baselines are set together"),
        };
        all_identical &= identical;

        let speedup = match baseline_wall {
            None => {
                baseline_wall = Some(wall);
                1.0
            }
            Some(base) => base / wall,
        };

        println!(
            "{threads:>8} {:>12.2} {:>12.0} {:>12.2} {:>14.1} {:>10}",
            wall * 1e3,
            visits.len() as f64 / wall,
            speedup,
            train_wall_ms,
            identical
        );
        let mut entry = report::timing_entry(threads, visits.len(), wall, speedup);
        report::push_field(&mut entry, "train_wall_ms", report::float(train_wall_ms));
        report::push_field(&mut entry, "outputs_identical", report::boolean(identical));
        report::push_field(
            &mut entry,
            "oversubscribed",
            report::boolean(oversubscribed),
        );
        entries.push(entry);
    }
    kyp_exec::set_threads(0); // back to auto-detection

    assert!(
        all_identical,
        "batch scoring must be bit-identical at every thread count"
    );

    let section = report::object([
        ("scale", report::float(args.scale)),
        ("seed", report::uint(args.seed)),
        ("pages", report::uint(visits.len() as u64)),
        (
            "available_parallelism",
            report::uint(hardware_threads as u64),
        ),
        ("sweep", serde_json::Value::Array(entries)),
    ]);
    let path = Path::new(report::BENCH_REPORT_PATH);
    report::write_bench_section(path, "table8_timing", section).expect("write bench report");
    println!();
    println!("Sweep written to {}", path.display());
}

/// Timing repetitions per sweep point (wall time takes the minimum).
const REPS: usize = 3;

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn print_row(label: &str, values: &[f64]) {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = if sorted.is_empty() {
        0.0
    } else {
        sorted[sorted.len() / 2]
    };
    let avg = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let var =
        values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / values.len().max(1) as f64;
    println!(
        "{label:<22} {median:>10.4} {avg:>10.4} {:>10.4}",
        var.sqrt()
    );
}
