//! Regenerates **Table VIII** (processing time per pipeline stage).
//!
//! Measures, per page: webpage scraping (the simulated browser visit),
//! loading data (json round-trip of the scraped bundle, as the paper's
//! scraper stores json files), feature extraction, and classification.
//! Reports median / average / standard deviation in milliseconds.
//!
//! Absolute numbers will beat the paper's Python prototype by orders of
//! magnitude (Rust, simulated network); the expected *shape* holds:
//! scraping ≫ feature extraction ≫ loading ≈ classification.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_table8_timing -- --scale 0.02`

use kyp_bench::{harness, EvalArgs, ExperimentEnv};
use kyp_core::{DataSources, DetectorConfig, PhishDetector};
use kyp_web::{Browser, VisitedPage};
use std::time::Instant;

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());

    // Timing sample: a mix of phish and legitimate pages.
    let mut sample: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    sample.extend(c.english_test().iter().take(sample.len() * 4).cloned());

    let browser = Browser::new(&c.world);
    let mut t_scrape = Vec::with_capacity(sample.len());
    let mut t_load = Vec::with_capacity(sample.len());
    let mut t_features = Vec::with_capacity(sample.len());
    let mut t_classify = Vec::with_capacity(sample.len());

    for url in &sample {
        let t0 = Instant::now();
        let Ok(visit) = browser.visit(url) else {
            continue;
        };
        t_scrape.push(ms(t0));

        // "Loading data": the scraper stores json; the classifier loads it.
        let json = serde_json::to_string(&visit).expect("serialize visit");
        let t1 = Instant::now();
        let visit: VisitedPage = serde_json::from_str(&json).expect("deserialize visit");
        t_load.push(ms(t1));

        let t2 = Instant::now();
        let sources = DataSources::from_page(&visit);
        let features = env.extractor.extract_with_sources(&visit, &sources);
        t_features.push(ms(t2));

        let t3 = Instant::now();
        let _ = detector.is_phish(&features);
        t_classify.push(ms(t3));
    }

    println!(
        "Table VIII: Processing time (milliseconds, {} pages)",
        t_scrape.len()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "", "Median", "Average", "StDev"
    );
    print_row("Webpage scraping", &t_scrape);
    print_row("Loading data", &t_load);
    print_row("Features extraction", &t_features);
    print_row("Classification", &t_classify);
    let total: Vec<f64> = t_load
        .iter()
        .zip(&t_features)
        .zip(&t_classify)
        .map(|((a, b), c)| a + b + c)
        .collect();
    print_row("Total (no scraping)", &total);
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn print_row(label: &str, values: &[f64]) {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = if sorted.is_empty() {
        0.0
    } else {
        sorted[sorted.len() / 2]
    };
    let avg = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let var =
        values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / values.len().max(1) as f64;
    println!(
        "{label:<22} {median:>10.4} {avg:>10.4} {:>10.4}",
        var.sqrt()
    );
}
