//! Regenerates the **Section VI-D pipeline experiment**: feeding the
//! detector's false positives to the target identifier.
//!
//! The paper, on 100,000 English pages: 53 false positives, of which the
//! target identifier re-labelled 39 legitimate, 10 suspicious and 4
//! phish-with-target — dropping the effective false positive rate from
//! 0.0005 to 0.0001.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_pipeline_fp_reduction -- --scale 0.05`

use kyp_bench::{harness, EvalArgs, ExperimentEnv};
use kyp_core::{DetectorConfig, PhishDetector, TargetIdentifier, TargetVerdict};
use kyp_web::Browser;
use std::sync::Arc;

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let identifier = TargetIdentifier::new(Arc::new(c.engine.clone()));
    let browser = Browser::new(&c.world);

    let mut total_leg = 0usize;
    let mut false_positives = Vec::new();
    for url in c.english_test() {
        let Ok(visit) = browser.visit(url) else {
            continue;
        };
        total_leg += 1;
        let features = env.extractor.extract(&visit);
        if detector.is_phish(&features) {
            false_positives.push(visit);
        }
    }

    let fpr_before = false_positives.len() as f64 / total_leg.max(1) as f64;
    println!("Section VI-D: target identification as a false-positive filter");
    println!(
        "Detector false positives: {} / {} legitimate pages (FPR {:.5})",
        false_positives.len(),
        total_leg,
        fpr_before
    );

    let mut confirmed_leg = 0usize;
    let mut suspicious = 0usize;
    let mut still_phish = 0usize;
    for visit in &false_positives {
        match identifier.identify(visit) {
            TargetVerdict::Legitimate { .. } => confirmed_leg += 1,
            TargetVerdict::Unknown => suspicious += 1,
            TargetVerdict::Phish { .. } => still_phish += 1,
        }
    }

    println!("Target identifier verdicts on those false positives:");
    println!("  confirmed legitimate: {confirmed_leg}   [paper: 39/53]");
    println!("  suspicious (no target, no confirmation): {suspicious}   [paper: 10/53]");
    println!("  phish with identified target: {still_phish}   [paper: 4/53]");

    let fpr_after = (false_positives.len() - confirmed_leg) as f64 / total_leg.max(1) as f64;
    println!();
    println!("Effective FPR: {fpr_before:.5} -> {fpr_after:.5}   [paper: 0.0005 -> 0.0001]");
}
