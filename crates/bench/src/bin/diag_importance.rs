//! Diagnostic: top features by gain (development aid, not a paper table).
use kyp_bench::{harness, EvalArgs, ExperimentEnv};
use kyp_ml::{GbmParams, GradientBoosting};

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;
    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let model = GradientBoosting::fit(&train, &GbmParams::default());
    let names = kyp_core::features::feature_names();
    let mut imp: Vec<(f64, &String)> = model
        .feature_importance()
        .into_iter()
        .zip(names.iter())
        .collect();
    imp.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for (v, n) in imp.iter().take(25) {
        println!("{v:.4}  {n}");
    }
}
