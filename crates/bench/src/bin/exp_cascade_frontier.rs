//! Cost/accuracy frontier of the two-stage URL cascade.
//!
//! Trains the full 212-feature detector and the cheap URL-only first
//! stage on the same training split, then sweeps the cascade's
//! uncertainty band from degenerate (`[0.5, 0.5]` — almost every page
//! final at the URL stage) to forced-full (`[0, 1]` — every page runs
//! the full pipeline). Each band reports:
//!
//! - **scrapes avoided**: the fraction of test pages whose URL score
//!   fell outside the band, so the browser never ran;
//! - **AUC delta**: deployed-cascade AUC (URL score where final, full
//!   score where fallen through) minus full-pipeline AUC, in absolute
//!   value — what the shortcut costs in ranking quality;
//! - **pages/sec**: wall-clock throughput of the deployed
//!   screen-then-maybe-classify loop over the whole test set.
//!
//! Results go to `BENCH_cascade.json` at the repo root. With
//! `--from-store <dir>` the detector trains from a `kyp gen --store`
//! directory's persisted rows and the sweep runs over its stored pages —
//! no generation or scraping at all.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_cascade_frontier -- --scale 0.02`
//! or:  `cargo run --release -p kyp-bench --bin exp_cascade_frontier -- --from-store store/`

use kyp_bench::{harness, report, EvalArgs, ExperimentEnv};
use kyp_core::{
    cascade::train_url_stage, CascadeBand, CascadeClassifier, CascadeDecision, DetectorConfig,
    FeatureExtractor, PhishDetector,
};
use kyp_ml::metrics;
use kyp_serve::{PageSource, StoredPages};
use kyp_web::{DomainRanker, VisitedPage};
use std::path::Path;
use std::time::Instant;

/// Symmetric band half-widths around the 0.5 score midpoint, narrowest
/// to widest; 0.5 yields the forced-full band `[0, 1]`.
const HALF_WIDTHS: [f64; 7] = [0.0, 0.05, 0.1, 0.2, 0.35, 0.45, 0.5];

/// Everything the sweep needs, however it was sourced.
struct FrontierInputs {
    detector: PhishDetector,
    cascade: CascadeClassifier,
    extractor: FeatureExtractor,
    /// Test-set request URLs, legitimate pages then phishing pages.
    test_urls: Vec<String>,
    /// Label per test URL (`true` = phishing).
    test_labels: Vec<bool>,
    /// Full-pipeline detector score per test URL.
    full_scores: Vec<f64>,
    /// The captured test pages, for timing the fall-through path.
    pages: StoredPages,
}

/// Generation path: synthesise a corpus, scrape it, train both stages.
fn generated_inputs(args: &EvalArgs) -> FrontierInputs {
    let env = ExperimentEnv::prepare(args);
    let c = &env.corpus;

    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let url_detector = train_url_stage(
        &c.leg_train,
        &phish_train,
        &c.ranker,
        &DetectorConfig::url_stage(),
    )
    .expect("train URL stage");
    let cascade = CascadeClassifier::new(url_detector, c.ranker.clone(), CascadeBand::default());

    let phish_test: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    let mut visits: Vec<VisitedPage> = harness::scrape_visits(c, c.english_test());
    let legit_pages = visits.len();
    visits.extend(harness::scrape_visits(c, &phish_test));
    let test_urls: Vec<String> = visits.iter().map(|v| v.starting_url.to_string()).collect();
    let test_labels: Vec<bool> = (0..visits.len()).map(|i| i >= legit_pages).collect();
    let rows = env.extractor.extract_batch(&visits);
    let full_scores = detector.score_batch(&rows);

    FrontierInputs {
        detector,
        cascade,
        extractor: env.extractor,
        test_urls,
        test_labels,
        full_scores,
        pages: StoredPages::new(visits),
    }
}

/// Store path: train from persisted feature rows and sweep over the
/// stored pages — nothing is generated or scraped.
fn store_inputs(dir: &Path) -> Result<FrontierInputs, String> {
    use knowyourphish::storeflow;

    let ranker_json = std::fs::read_to_string(dir.join("ranker.json"))
        .map_err(|e| format!("read ranker.json: {e}"))?;
    let ranker: DomainRanker = serde_json::from_str(&ranker_json).map_err(|e| e.to_string())?;

    let train = storeflow::load_split_dataset(dir, "leg_train", "phish_train")?;
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let (leg_urls, phish_urls) = storeflow::load_split_urls(dir, "leg_train", "phish_train")?;
    let url_detector = train_url_stage(
        &leg_urls,
        &phish_urls,
        &ranker,
        &DetectorConfig::url_stage(),
    )?;
    let cascade = CascadeClassifier::new(url_detector, ranker.clone(), CascadeBand::default());

    let (full_scores, test_labels) =
        storeflow::score_split_streaming(dir, &detector, "leg_test", "phish_test")?;
    let (leg_test, phish_test) = storeflow::load_split_urls(dir, "leg_test", "phish_test")?;
    let mut test_urls = leg_test;
    test_urls.extend(phish_test);
    if test_urls.len() != full_scores.len() {
        return Err(format!(
            "store test split mismatch: {} URLs vs {} scored rows",
            test_urls.len(),
            full_scores.len()
        ));
    }
    let (pages, _) = storeflow::load_serving_pages(dir)?;

    Ok(FrontierInputs {
        detector,
        extractor: FeatureExtractor::new(ranker),
        cascade,
        test_urls,
        test_labels,
        full_scores,
        pages,
    })
}

fn main() {
    let args = EvalArgs::parse();
    let from_store = {
        let mut iter = std::env::args().skip(1);
        let mut dir = None;
        while let Some(a) = iter.next() {
            if a == "--from-store" {
                dir = iter.next();
            }
        }
        dir
    };
    let mut inputs = match &from_store {
        Some(dir) => store_inputs(Path::new(dir)).expect("load store inputs"),
        None => generated_inputs(&args),
    };
    let n = inputs.test_urls.len();
    let full_auc = metrics::auc(&inputs.full_scores, &inputs.test_labels);
    eprintln!(
        "[cascade] {} test pages, full-pipeline AUC {full_auc:.4}{}",
        n,
        from_store
            .as_deref()
            .map(|d| format!(" (from store {d})"))
            .unwrap_or_default()
    );

    println!("Cascade band frontier ({n} test pages, full AUC {full_auc:.4})");
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "Band", "Avoided", "Avoided%", "DeployedAUC", "AUC delta", "Wall ms", "Pages/sec"
    );

    let mut entries = Vec::new();
    let mut frontier_met = false;
    for &half in &HALF_WIDTHS {
        // Round to two decimals so 0.5 - 0.35 prints as 0.15, not as
        // its closest f64 neighbour.
        let lo = ((0.5 - half).max(0.0) * 100.0).round() / 100.0;
        let hi = ((0.5 + half).min(1.0) * 100.0).round() / 100.0;
        let band = CascadeBand::new(lo, hi).expect("a symmetric half-width band is always valid");
        inputs.cascade.set_band(band);

        // Deployed scores: the URL score where it is final, the full
        // score where the page falls through (or the URL is unscorable).
        let mut deployed = Vec::with_capacity(n);
        let mut avoided = 0u64;
        let mut unscorable = 0u64;
        for (i, url) in inputs.test_urls.iter().enumerate() {
            match inputs.cascade.url_score(url) {
                Some(s) if !band.contains(s) => {
                    avoided += 1;
                    deployed.push(s);
                }
                Some(_) => deployed.push(inputs.full_scores[i]),
                None => {
                    unscorable += 1;
                    deployed.push(inputs.full_scores[i]);
                }
            }
        }
        let deployed_auc = metrics::auc(&deployed, &inputs.test_labels);
        let auc_delta = (full_auc - deployed_auc).abs();
        let avoided_frac = avoided as f64 / n as f64;

        // Wall-clock the deployed loop: screen every URL, fetch +
        // extract + score only the fall-through set.
        let t0 = Instant::now();
        for url in &inputs.test_urls {
            match inputs.cascade.prescreen(url) {
                CascadeDecision::Final(verdict) => {
                    std::hint::black_box(verdict.score());
                }
                CascadeDecision::Uncertain { .. } | CascadeDecision::Unscorable => {
                    if let Ok(page) = inputs.pages.fetch(url) {
                        let row = inputs.extractor.extract(&page.visit);
                        std::hint::black_box(inputs.detector.score(&row));
                    }
                }
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        let pages_per_sec = if wall > 0.0 { n as f64 / wall } else { 0.0 };

        if avoided_frac >= 0.5 && auc_delta <= 0.01 {
            frontier_met = true;
        }

        println!(
            "{:>12} {avoided:>10} {:>9.1}% {deployed_auc:>12.4} {auc_delta:>12.4} {:>12.1} {pages_per_sec:>12.0}",
            band.to_string(),
            avoided_frac * 100.0,
            wall * 1e3
        );

        entries.push(report::object([
            ("lo", report::float(band.lo)),
            ("hi", report::float(band.hi)),
            ("screened", report::uint(n as u64)),
            ("scrapes_avoided", report::uint(avoided)),
            ("scrapes_avoided_frac", report::float(avoided_frac)),
            ("unscorable", report::uint(unscorable)),
            ("deployed_auc", report::float(deployed_auc)),
            ("auc_delta", report::float(auc_delta)),
            ("wall_ms", report::float(wall * 1e3)),
            ("pages_per_sec", report::float(pages_per_sec)),
        ]));
    }

    assert!(
        frontier_met,
        "no band avoided >= 50% of scrapes within an AUC delta of 0.01 — \
         the cascade frontier regressed"
    );

    let section = report::object([
        ("scale", report::float(args.scale)),
        ("seed", report::uint(args.seed)),
        ("from_store", report::boolean(from_store.is_some())),
        ("test_pages", report::uint(n as u64)),
        ("full_auc", report::float(full_auc)),
        ("sweep", serde_json::Value::Array(entries)),
    ]);
    let path = Path::new(report::BENCH_CASCADE_REPORT_PATH);
    report::write_bench_section(path, "cascade_frontier", section).expect("write bench report");
    println!();
    println!("Frontier written to {}", path.display());
}
