//! Store-throughput sweep: the generate-once/train-forever economics of
//! `kyp-store` at corpus scale.
//!
//! For each corpus scale in `[--scale, 4 × --scale]` (so the larger
//! point is 4× the in-memory experiment default) this experiment:
//!
//! - times a full `build_store` (scrape + extract + stream to disk) —
//!   the generate-once cost, reported as write pages/second;
//! - times a cold sequential read of every stored page and every stored
//!   feature row, against the in-memory alternative each read replaces
//!   (re-scraping the corpus, re-extracting all 212 features) — the
//!   train-forever payoff, reported as a speedup;
//! - classifies every stored page through the full pipeline at each
//!   thread count of the sweep and asserts the store-backed verdict
//!   stream is byte-identical to the in-memory classification of the
//!   same scrape — the determinism contract this format exists to keep.
//!
//! Results go to `BENCH_store.json` at the repo root.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_store_throughput -- --scale 0.05 --threads 1,2,4`

use knowyourphish::storeflow;
use kyp_bench::{report, EvalArgs, ExperimentEnv};
use kyp_core::{DetectorConfig, PhishDetector, Pipeline, TargetIdentifier};
use kyp_store::{features_path, pages_path, FeatureStoreReader, PageStoreReader};
use kyp_web::ResilientBrowser;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Timing repetitions per measurement (wall time takes the minimum).
const REPS: usize = 3;

/// A fresh store directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kyp_bench_store_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map_or(0, |m| m.len())
}

fn main() {
    let args = EvalArgs::parse();
    let sweep = if args.threads.is_empty() {
        vec![1, 2, 4]
    } else {
        args.threads.clone()
    };
    let scales = [args.scale, args.scale * 4.0];

    println!("Store throughput sweep (best of {REPS} reps per measurement)");
    println!(
        "{:>8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Scale", "Pages", "Write p/s", "Read p/s", "Scrape p/s", "Rows r/s", "Extract r/s"
    );

    let mut scale_entries = Vec::new();
    let mut all_identical = true;

    for scale in scales {
        let scale_args = EvalArgs {
            scale,
            seed: args.seed,
            threads: args.threads.clone(),
        };
        let env = ExperimentEnv::prepare(&scale_args);
        let corpus = &env.corpus;
        let config = scale_args.campaign();
        let dir = fresh_dir(&format!("s{}", (scale * 1000.0) as u64));

        // Generate-once: stream scrape + extraction into the store.
        let mut write_wall = f64::INFINITY;
        let mut build = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let report =
                storeflow::build_store(&dir, corpus, &config, &corpus.world, 0.0, config.seed)
                    .expect("build store");
            write_wall = write_wall.min(t0.elapsed().as_secs_f64());
            build = Some(report);
        }
        let build = build.expect("at least one build ran");
        let pages = build.pages;
        let store_bytes = file_len(&pages_path(&dir)) + file_len(&features_path(&dir));

        // Train-forever, pages side: cold sequential read of every page
        // vs re-scraping the same corpus.
        let mut read_wall = f64::INFINITY;
        let mut read_pages = 0usize;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let reader = PageStoreReader::open(&pages_path(&dir)).expect("open page store");
            read_pages = reader.read_all().expect("read page store").len();
            read_wall = read_wall.min(t0.elapsed().as_secs_f64());
        }
        assert_eq!(read_pages as u64, pages, "short read");

        let mut scrape_wall = f64::INFINITY;
        let mut visits = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let mut scraper = ResilientBrowser::new(&corpus.world);
            visits = Vec::with_capacity(read_pages);
            for (_, urls, _) in corpus.scrape_bundles() {
                for url in &urls {
                    if let Ok(scraped) = scraper.scrape(url) {
                        visits.push(scraped.visit);
                    }
                }
            }
            scrape_wall = scrape_wall.min(t0.elapsed().as_secs_f64());
        }
        assert_eq!(visits.len() as u64, pages, "scrape/store page mismatch");

        // Train-forever, features side: cold stream of every stored row
        // vs re-extracting all features from the scraped pages.
        let mut rows_wall = f64::INFINITY;
        let mut rows_read = 0usize;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let mut reader =
                FeatureStoreReader::open(&features_path(&dir)).expect("open feature store");
            rows_read = 0;
            while let Some(block) = reader.next_block().expect("read feature store") {
                rows_read += block.labels.len();
            }
            rows_wall = rows_wall.min(t0.elapsed().as_secs_f64());
        }
        assert_eq!(rows_read as u64, build.rows, "short feature read");

        let mut extract_wall = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let flat = env.extractor.extract_batch_flat(&visits);
            extract_wall = extract_wall.min(t0.elapsed().as_secs_f64());
            assert_eq!(flat.len(), visits.len() * env.extractor.feature_count());
        }

        let per_sec = |count: u64, wall: f64| if wall > 0.0 { count as f64 / wall } else { 0.0 };
        let write_ps = per_sec(pages, write_wall);
        let read_ps = per_sec(pages, read_wall);
        let scrape_ps = per_sec(pages, scrape_wall);
        let rows_ps = per_sec(build.rows, rows_wall);
        let extract_ps = per_sec(build.rows, extract_wall);
        println!(
            "{scale:>8.3} {pages:>7} {write_ps:>12.0} {read_ps:>12.0} {scrape_ps:>12.0} {rows_ps:>12.0} {extract_ps:>12.0}"
        );

        // Determinism: the store-backed verdict stream must equal the
        // in-memory classification of the same scrape, at every thread
        // count of the sweep.
        let train =
            storeflow::load_split_dataset(&dir, "leg_train", "phish_train").expect("train rows");
        let detector = PhishDetector::train(&train, &DetectorConfig::default());
        let pipeline = Pipeline::new(
            env.extractor.clone(),
            detector,
            TargetIdentifier::new(Arc::new(corpus.engine.clone())),
        );
        let mut scraper = ResilientBrowser::new(&corpus.world);
        let mut batch = Vec::new();
        for (_, urls, _) in corpus.scrape_bundles() {
            for url in &urls {
                if let Ok(scraped) = scraper.scrape(url) {
                    batch.push((url.clone(), scraped));
                }
            }
        }
        let in_memory: Vec<String> = pipeline
            .classify_scraped(&batch)
            .iter()
            .map(storeflow::verdict_line)
            .collect();
        let mut thread_entries = Vec::new();
        for &threads in &sweep {
            kyp_exec::set_threads(threads);
            let t0 = Instant::now();
            let stored = storeflow::store_verdict_lines(&dir, &pipeline).expect("store verdicts");
            let verdict_wall = t0.elapsed().as_secs_f64();
            let identical = stored == in_memory;
            all_identical &= identical;
            println!(
                "    verdicts at {threads} threads: {} lines in {:.1} ms, identical to in-memory: {identical}",
                stored.len(),
                verdict_wall * 1e3
            );
            thread_entries.push(report::object([
                ("threads", report::uint(threads as u64)),
                ("wall_ms", report::float(verdict_wall * 1e3)),
                ("verdicts", report::uint(stored.len() as u64)),
                ("identical_to_in_memory", report::boolean(identical)),
            ]));
        }
        kyp_exec::set_threads(0); // back to auto-detection

        scale_entries.push(report::object([
            ("scale", report::float(scale)),
            ("pages", report::uint(pages)),
            ("feature_rows", report::uint(build.rows)),
            ("store_bytes", report::uint(store_bytes)),
            ("write_wall_ms", report::float(write_wall * 1e3)),
            ("write_pages_per_sec", report::float(write_ps)),
            ("cold_read_wall_ms", report::float(read_wall * 1e3)),
            ("cold_read_pages_per_sec", report::float(read_ps)),
            ("rescrape_pages_per_sec", report::float(scrape_ps)),
            (
                "read_speedup_vs_rescrape",
                report::float(if scrape_ps > 0.0 {
                    read_ps / scrape_ps
                } else {
                    0.0
                }),
            ),
            ("feature_rows_per_sec", report::float(rows_ps)),
            ("reextract_rows_per_sec", report::float(extract_ps)),
            (
                "row_speedup_vs_reextract",
                report::float(if extract_ps > 0.0 {
                    rows_ps / extract_ps
                } else {
                    0.0
                }),
            ),
            ("verdict_sweep", serde_json::Value::Array(thread_entries)),
        ]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    assert!(
        all_identical,
        "store-backed verdict streams must be byte-identical to the \
         in-memory pipeline at every thread count"
    );

    let section = report::object([
        ("seed", report::uint(args.seed)),
        ("base_scale", report::float(args.scale)),
        ("scales", serde_json::Value::Array(scale_entries)),
    ]);
    let path = Path::new(report::BENCH_STORE_REPORT_PATH);
    report::write_bench_section(path, "store_throughput", section).expect("write bench report");
    println!();
    println!("Sweep written to {}", path.display());
}
