//! Regenerates **Table VI** (per-language accuracy), **Fig. 3**
//! (precision vs recall) and **Fig. 4** (ROC per language).
//!
//! Scenario 2 of the paper: train once on `legTrain` + `phishTrain`, then
//! evaluate against `phishTest` mixed with each language's legitimate
//! test set at discrimination threshold 0.7.
//!
//! Curve series are written to `results/fig3_pr_<lang>.dat` and
//! `results/fig4_roc_<lang>.dat` (gnuplot-ready).
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_table6_languages -- --scale 0.05`

use kyp_bench::{harness, EvalArgs, EvalRow, ExperimentEnv};
use kyp_core::{DetectorConfig, PhishDetector};
use kyp_ml::metrics;
use std::fs;
use std::io::Write as _;

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    // Scenario 2 training: the oldest captured datasets.
    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    eprintln!(
        "[train] {} instances ({} phish)",
        train.len(),
        train.positives()
    );
    let detector = PhishDetector::train(&train, &DetectorConfig::default());

    // Score the phishing test set once; reuse against every language.
    let phish_test: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    let phish_data = harness::scrape_dataset(c, &env.extractor, &[], &phish_test);
    let phish_scores = detector.score_dataset(&phish_data);

    fs::create_dir_all("results").expect("create results dir");
    println!("Table VI: Detailed accuracy evaluation for six languages (threshold 0.7)");
    EvalRow::print_header("Language");

    for (lang, urls) in &c.language_tests {
        let leg_data = harness::scrape_dataset(c, &env.extractor, urls, &[]);
        let mut scores = detector.score_dataset(&leg_data);
        let mut labels = vec![false; scores.len()];
        scores.extend_from_slice(&phish_scores);
        labels.extend(std::iter::repeat_n(true, phish_scores.len()));

        let row = EvalRow::compute(lang.name(), &scores, &labels, detector.threshold());
        row.print();

        // Fig. 3: precision vs recall while sweeping the threshold.
        let pr = metrics::precision_recall_curve(&scores, &labels);
        write_curve(
            &format!("results/fig3_pr_{}.dat", lang.name().to_lowercase()),
            &format!("Fig.3 precision-recall, {}", lang.name()),
            &pr,
        );
        // Fig. 4: ROC.
        let roc = metrics::roc_curve(&scores, &labels);
        write_curve(
            &format!("results/fig4_roc_{}.dat", lang.name().to_lowercase()),
            &format!("Fig.4 ROC, {}", lang.name()),
            &roc,
        );
        if *lang == kyp_datagen::Language::English {
            print_roc_sketch(lang.name(), &roc);
        }
    }
    println!();
    println!("Fig. 3 / Fig. 4 series written to results/fig3_pr_*.dat and results/fig4_roc_*.dat");
}

/// Prints a terminal sketch of an ROC curve (x: FPR, y: TPR).
fn print_roc_sketch(lang: &str, roc: &[(f64, f64)]) {
    // Zoom on the interesting corner, like the paper's Fig. 4 axes.
    let zoomed: Vec<(f64, f64)> = roc
        .iter()
        .copied()
        .filter(|(fpr, _)| *fpr <= 0.02)
        .collect();
    if zoomed.len() > 2 {
        println!();
        println!("ROC ({lang}), FPR in [0, 0.02]:");
        print!("{}", kyp_bench::plot::ascii_plot(&[('*', &zoomed)], 48, 10));
    }
}

fn write_curve(path: &str, title: &str, points: &[(f64, f64)]) {
    let mut out = String::with_capacity(points.len() * 20);
    out.push_str(&format!("# {title}\n"));
    for (x, y) in points {
        out.push_str(&format!("{x:.6} {y:.6}\n"));
    }
    let mut f = fs::File::create(path).expect("create curve file");
    f.write_all(out.as_bytes()).expect("write curve file");
}
