//! Regenerates **Table VII**, **Fig. 2** (accuracy per feature set) and
//! **Fig. 5** (ROC per feature set).
//!
//! Both evaluation scenarios of the paper:
//! - *scenario 1*: 5-fold cross-validation on `legTrain` + `phishTrain`;
//! - *scenario 2*: train on the old sets, test on `phishTest` + `English`.
//!
//! For each of the eight feature groupings (f1, f2, f3, f4, f5, f1+5,
//! f2+3+4, fall) the binary prints precision/recall/F1/FPR/AUC under both
//! scenarios and writes the Fig. 5 ROC series to
//! `results/fig5_roc_<set>_<scenario>.dat`. Fig. 2's bar charts plot the
//! same numbers as the table.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_table7_feature_sets -- --scale 0.05`

use kyp_bench::{harness, EvalArgs, EvalRow, ExperimentEnv};
use kyp_core::FeatureSet;
use kyp_ml::{cv, metrics, GbmParams, GradientBoosting};
use std::fs;
use std::io::Write as _;

const THRESHOLD: f64 = 0.7;

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    // Full 212-feature datasets, extracted once; feature subsets are
    // column selections.
    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let phish_test: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let test = harness::scrape_dataset(c, &env.extractor, c.english_test(), &phish_test);
    eprintln!(
        "[data] train {} ({} phish) / test {} ({} phish)",
        train.len(),
        train.positives(),
        test.len(),
        test.positives()
    );

    fs::create_dir_all("results").expect("create results dir");
    println!("Table VII: Detailed accuracy evaluation for different feature sets (threshold 0.7)");

    for scenario in ["Cross-validation", "English"] {
        println!();
        println!("Scenario: {scenario}");
        EvalRow::print_header("Features");
        for set in FeatureSet::ALL_SETS {
            let cols = set.columns();
            let (scores, labels) = if scenario == "Cross-validation" {
                let sub = train.select_features(&cols);
                cv::cross_validate_par(&sub, 5, args.seed, |tr, te| {
                    let model = GradientBoosting::fit(tr, &GbmParams::default());
                    model.predict_dataset(te)
                })
            } else {
                let sub_train = train.select_features(&cols);
                let sub_test = test.select_features(&cols);
                let model = GradientBoosting::fit(&sub_train, &GbmParams::default());
                (model.predict_dataset(&sub_test), sub_test.labels().to_vec())
            };
            let row = EvalRow::compute(set.label(), &scores, &labels, THRESHOLD);
            row.print();

            // Fig. 5: ROC per feature set.
            let roc = metrics::roc_curve(&scores, &labels);
            let tag = set.label().replace([',', '.'], "");
            let scen_tag = if scenario == "English" {
                "english"
            } else {
                "cv"
            };
            write_curve(
                &format!("results/fig5_roc_{tag}_{scen_tag}.dat"),
                &format!("Fig.5 ROC, {} ({scenario})", set.label()),
                &roc,
            );
        }
    }
    println!();
    println!("Fig. 2 bars plot the table above; Fig. 5 ROC series in results/fig5_roc_*.dat");

    // Feature-importance epilogue (Section VII-A's relevance discussion).
    let model = GradientBoosting::fit(&train, &GbmParams::default());
    let importance = model.feature_importance();
    let mut by_group = [0.0f64; 5];
    for (set, slot) in [
        (FeatureSet::F1, 0),
        (FeatureSet::F2, 1),
        (FeatureSet::F3, 2),
        (FeatureSet::F4, 3),
        (FeatureSet::F5, 4),
    ] {
        by_group[slot] = set.columns().iter().map(|&i| importance[i]).sum();
    }
    println!();
    println!("Share of model gain per feature group (fall model):");
    for (label, v) in ["f1", "f2", "f3", "f4", "f5"].iter().zip(by_group) {
        println!("  {label}: {v:.3}");
    }
}

fn write_curve(path: &str, title: &str, points: &[(f64, f64)]) {
    let mut out = format!("# {title}\n");
    for (x, y) in points {
        out.push_str(&format!("{x:.6} {y:.6}\n"));
    }
    let mut f = fs::File::create(path).expect("create curve file");
    f.write_all(out.as_bytes()).expect("write curve file");
}
