//! Regenerates **Fig. 6** (performance vs the scale of data).
//!
//! Scenario 2 training; the test set is grown in ten increments of
//! (10,000 legitimate + 100 phish) at paper scale — proportionally at
//! smaller `--scale` — sampling without replacement from the English set
//! and `phishTest`, re-measuring precision/recall/FPR at each size.
//!
//! Output: one row per increment plus `results/fig6_scalability.dat`.
//! With `--threads n[,n...]` the full-test-pool scoring pass is re-timed
//! at each thread count (bit-identical scores asserted) and the sweep is
//! merged into `BENCH_pipeline.json` at the repo root.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_fig6_scalability -- --scale 0.05 --threads 1,2,4`

use kyp_bench::{harness, report, EvalArgs, ExperimentEnv};
use kyp_core::{DetectorConfig, PhishDetector};
use kyp_ml::metrics::Confusion;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());

    // Score everything once; the sweep samples score vectors.
    let phish_test: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    let leg_data = harness::scrape_dataset(c, &env.extractor, c.english_test(), &[]);
    let phish_data = harness::scrape_dataset(c, &env.extractor, &[], &phish_test);
    let leg_scores = detector.score_dataset(&leg_data);
    let phish_scores = detector.score_dataset(&phish_data);

    let steps = 10usize;
    let leg_step = (leg_scores.len() / steps).max(1);
    let phish_step = (phish_scores.len() / steps).max(1);

    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let mut leg_order: Vec<usize> = (0..leg_scores.len()).collect();
    let mut phish_order: Vec<usize> = (0..phish_scores.len()).collect();
    leg_order.shuffle(&mut rng);
    phish_order.shuffle(&mut rng);

    fs::create_dir_all("results").expect("create results dir");
    let mut dat = String::from("# Fig.6 sample_size precision recall fpr\n");
    println!("Fig. 6: Performance vs the scale of data (threshold 0.7)");
    println!(
        "{:>10} {:>10} {:>9} {:>9} {:>10}",
        "Legit", "Phish", "Precision", "Recall", "FP Rate"
    );

    for step in 1..=steps {
        let n_leg = (leg_step * step).min(leg_order.len());
        let n_phish = (phish_step * step).min(phish_order.len());
        let mut scores: Vec<f64> = leg_order[..n_leg].iter().map(|&i| leg_scores[i]).collect();
        let mut labels = vec![false; n_leg];
        scores.extend(phish_order[..n_phish].iter().map(|&i| phish_scores[i]));
        labels.extend(std::iter::repeat_n(true, n_phish));

        let conf = Confusion::at_threshold(&scores, &labels, detector.threshold());
        println!(
            "{:>10} {:>10} {:>9.3} {:>9.3} {:>10.5}",
            n_leg,
            n_phish,
            conf.precision(),
            conf.recall(),
            conf.fpr()
        );
        dat.push_str(&format!(
            "{} {:.6} {:.6} {:.6}\n",
            n_leg + n_phish,
            conf.precision(),
            conf.recall(),
            conf.fpr()
        ));
    }

    let mut f = fs::File::create("results/fig6_scalability.dat").expect("create dat");
    f.write_all(dat.as_bytes()).expect("write dat");
    println!();
    println!("Series written to results/fig6_scalability.dat");

    // --- Scoring-throughput thread sweep over the full test pool --------
    if args.threads.len() > 1 {
        let pages = leg_data.len() + phish_data.len();
        println!();
        println!("Scoring sweep over the full test pool ({pages} rows)");
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>10}",
            "Threads", "Score ms", "Rows/sec", "Speedup", "Identical"
        );
        let mut baseline_wall: Option<f64> = None;
        let mut baseline_bits: Option<Vec<u64>> = None;
        let mut entries = Vec::new();
        for &threads in &args.threads {
            kyp_exec::set_threads(threads);
            let t0 = Instant::now();
            let mut run = detector.score_dataset(&leg_data);
            run.extend(detector.score_dataset(&phish_data));
            let wall = t0.elapsed().as_secs_f64();

            let bits: Vec<u64> = run.iter().map(|s| s.to_bits()).collect();
            let identical = match &baseline_bits {
                None => {
                    baseline_bits = Some(bits);
                    true
                }
                Some(base) => *base == bits,
            };
            assert!(
                identical,
                "scores must be bit-identical at {threads} threads"
            );
            let speedup = match baseline_wall {
                None => {
                    baseline_wall = Some(wall);
                    1.0
                }
                Some(base) => base / wall,
            };
            println!(
                "{threads:>8} {:>12.2} {:>12.0} {:>12.2} {:>10}",
                wall * 1e3,
                pages as f64 / wall,
                speedup,
                identical
            );
            entries.push(report::timing_entry(threads, pages, wall, speedup));
        }
        kyp_exec::set_threads(0); // back to auto-detection
        let section = report::object([
            ("scale", report::float(args.scale)),
            ("seed", report::uint(args.seed)),
            ("rows", report::uint(pages as u64)),
            ("sweep", serde_json::Value::Array(entries)),
        ]);
        let path = Path::new(report::BENCH_REPORT_PATH);
        report::write_bench_section(path, "fig6_scalability", section).expect("write bench report");
        println!("Sweep merged into {}", path.display());
    }
}
