//! Regenerates **Fig. 6** (performance vs the scale of data).
//!
//! Scenario 2 training; the test set is grown in ten increments of
//! (10,000 legitimate + 100 phish) at paper scale — proportionally at
//! smaller `--scale` — sampling without replacement from the English set
//! and `phishTest`, re-measuring precision/recall/FPR at each size.
//!
//! Output: one row per increment plus `results/fig6_scalability.dat`.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_fig6_scalability -- --scale 0.05`

use kyp_bench::{harness, EvalArgs, ExperimentEnv};
use kyp_core::{DetectorConfig, PhishDetector};
use kyp_ml::metrics::Confusion;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs;
use std::io::Write as _;

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());

    // Score everything once; the sweep samples score vectors.
    let phish_test: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    let leg_data = harness::scrape_dataset(c, &env.extractor, c.english_test(), &[]);
    let phish_data = harness::scrape_dataset(c, &env.extractor, &[], &phish_test);
    let leg_scores = detector.score_dataset(&leg_data);
    let phish_scores = detector.score_dataset(&phish_data);

    let steps = 10usize;
    let leg_step = (leg_scores.len() / steps).max(1);
    let phish_step = (phish_scores.len() / steps).max(1);

    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let mut leg_order: Vec<usize> = (0..leg_scores.len()).collect();
    let mut phish_order: Vec<usize> = (0..phish_scores.len()).collect();
    leg_order.shuffle(&mut rng);
    phish_order.shuffle(&mut rng);

    fs::create_dir_all("results").expect("create results dir");
    let mut dat = String::from("# Fig.6 sample_size precision recall fpr\n");
    println!("Fig. 6: Performance vs the scale of data (threshold 0.7)");
    println!(
        "{:>10} {:>10} {:>9} {:>9} {:>10}",
        "Legit", "Phish", "Precision", "Recall", "FP Rate"
    );

    for step in 1..=steps {
        let n_leg = (leg_step * step).min(leg_order.len());
        let n_phish = (phish_step * step).min(phish_order.len());
        let mut scores: Vec<f64> = leg_order[..n_leg].iter().map(|&i| leg_scores[i]).collect();
        let mut labels = vec![false; n_leg];
        scores.extend(phish_order[..n_phish].iter().map(|&i| phish_scores[i]));
        labels.extend(std::iter::repeat_n(true, n_phish));

        let conf = Confusion::at_threshold(&scores, &labels, detector.threshold());
        println!(
            "{:>10} {:>10} {:>9.3} {:>9.3} {:>10.5}",
            n_leg,
            n_phish,
            conf.precision(),
            conf.recall(),
            conf.fpr()
        );
        dat.push_str(&format!(
            "{} {:.6} {:.6} {:.6}\n",
            n_leg + n_phish,
            conf.precision(),
            conf.recall(),
            conf.fpr()
        ));
    }

    let mut f = fs::File::create("results/fig6_scalability.dat").expect("create dat");
    f.write_all(dat.as_bytes()).expect("write dat");
    println!();
    println!("Series written to results/fig6_scalability.dat");
}
