//! Cluster-throughput sweep: `kyp-cluster` over shards × replicas ×
//! crash rate.
//!
//! Generates a corpus, trains the detector, then replays one seeded
//! 40%-duplicate workload through a [`ClusterService`] under every
//! configuration of the sweep, measuring wall-clock pages/second and the
//! failover/shed accounting of each point. The cluster's determinism
//! contract is asserted across the whole sweep: the id-sorted verdict
//! stream must be byte-identical at every shard count, replica fan-out,
//! thread count and crash rate — crashes move *where* and *when* work
//! happens, never *what* the answers are.
//!
//! Results go to `BENCH_cluster.json` at the repo root.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_cluster_throughput -- --scale 0.02 --threads 1,4`

use kyp_bench::{harness, report, EvalArgs, ExperimentEnv, TimedSource};
use kyp_cluster::{verdict_stream, ClusterConfig, ClusterService, CrashPlan};
use kyp_core::{DetectorConfig, PhishDetector, Pipeline, TargetIdentifier};
use kyp_serve::{
    generate, ArrivalPattern, BatchPolicy, CacheConfig, ScraperSource, ServeConfig, ServeRequest,
    WorkloadConfig,
};
use kyp_web::ResilientBrowser;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Timing repetitions per sweep point (wall time takes the minimum).
const REPS: usize = 2;

/// Cluster sizes swept.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Replica fan-outs swept at every cluster size.
const REPLICA_COUNTS: [usize; 2] = [1, 2];

/// Per-incarnation crash probabilities swept.
const CRASH_RATES: [f64; 2] = [0.0, 0.2];

fn cluster_config(shards: usize, replicas: usize, crash_rate: f64, seed: u64) -> ClusterConfig {
    ClusterConfig {
        shards,
        replicas,
        node: ServeConfig {
            queue_capacity: 32,
            batch: BatchPolicy {
                max_batch: 8,
                max_delay_ms: 25,
            },
            cache: Some(CacheConfig::default()),
            ..ServeConfig::default()
        },
        crash: (crash_rate > 0.0).then(|| {
            let mut plan = CrashPlan::new(seed, crash_rate);
            // Keep uptimes inside the trace span so a non-zero rate
            // actually produces crashes worth accounting.
            plan.min_uptime_ms = 200;
            plan.max_uptime_ms = 1_500;
            plan.downtime_ms = 500;
            plan
        }),
        ..ClusterConfig::default()
    }
}

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let identifier = TargetIdentifier::new(Arc::new(c.engine.clone()));
    let pipeline = Pipeline::new(env.extractor.clone(), detector, identifier);

    let mut pool: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    pool.extend(c.english_test().iter().cloned());
    let workload = WorkloadConfig {
        seed: args.seed,
        requests: (pool.len() * 2).clamp(100, 2_000),
        duplicate_rate: 0.4,
        arrival: ArrivalPattern::Bursty {
            burst: 16,
            burst_gap_ms: 1,
            idle_gap_ms: 40,
        },
        fault_seed: 0,
        fault_rate: 0.0,
    };
    let trace: Vec<ServeRequest> = generate(&workload, &pool);
    eprintln!(
        "[cluster] {} requests over {} urls (duplicate rate {})",
        trace.len(),
        pool.len(),
        workload.duplicate_rate
    );

    let sweep = if args.threads.is_empty() {
        vec![1, 4]
    } else {
        args.threads.clone()
    };

    println!(
        "Cluster throughput sweep ({} requests, best of {REPS} reps per point)",
        trace.len()
    );
    println!(
        "{:>8} {:>7} {:>9} {:>6} {:>12} {:>11} {:>11} {:>12} {:>8} {:>8} {:>7} {:>10}",
        "Threads",
        "Shards",
        "Replicas",
        "Crash",
        "Wall ms",
        "Scrape ms",
        "Score ms",
        "Pages/sec",
        "Crashes",
        "Redisp",
        "Shed",
        "Identical"
    );

    let mut baseline: Option<Vec<String>> = None;
    let mut entries = Vec::new();
    let mut all_identical = true;

    for &threads in &sweep {
        kyp_exec::set_threads(threads);
        for &shards in &SHARD_COUNTS {
            for &replicas in &REPLICA_COUNTS {
                for &crash_rate in &CRASH_RATES {
                    let mut wall = f64::INFINITY;
                    let mut scrape_wall = 0.0f64;
                    let mut lines: Vec<String> = Vec::new();
                    let mut last_report = None;
                    for _ in 0..REPS {
                        let (source, scrape_nanos) = TimedSource::new(ScraperSource::with_browser(
                            ResilientBrowser::new(&c.world),
                        ));
                        let mut cluster = ClusterService::new(
                            pipeline.clone(),
                            source,
                            cluster_config(shards, replicas, crash_rate, args.seed),
                        );
                        let t0 = Instant::now();
                        let responses = cluster.run_trace(&trace);
                        let elapsed = t0.elapsed().as_secs_f64();
                        if elapsed < wall {
                            wall = elapsed;
                            scrape_wall = scrape_nanos.load(std::sync::atomic::Ordering::Relaxed)
                                as f64
                                * 1e-9;
                        }
                        lines = verdict_stream(&responses);
                        last_report = Some(cluster.report());
                    }
                    let run_report = last_report.expect("at least one rep ran");
                    let score_wall = (wall - scrape_wall).max(0.0);
                    let node_cache_hits: u64 =
                        run_report.nodes.iter().map(|n| n.serve.cache.hits).sum();
                    if node_cache_hits + run_report.cascade.url_only > run_report.answered {
                        eprintln!(
                            "[cluster] warning: node cache hits ({node_cache_hits}) + cascade \
                             URL-only finals ({}) exceed answered ({}) — a request was \
                             double-counted as both a cache hit and a cascade hit",
                            run_report.cascade.url_only, run_report.answered
                        );
                    }

                    let identical = match &baseline {
                        None => {
                            baseline = Some(lines);
                            true
                        }
                        Some(base) => *base == lines,
                    };
                    all_identical &= identical;

                    let pages_per_sec = if wall > 0.0 {
                        run_report.answered as f64 / wall
                    } else {
                        0.0
                    };

                    println!(
                        "{threads:>8} {shards:>7} {replicas:>9} {crash_rate:>6.2} {:>12.1} {:>11.1} {:>11.1} {:>12.0} {:>8} {:>8} {:>7} {:>10}",
                        wall * 1e3,
                        scrape_wall * 1e3,
                        score_wall * 1e3,
                        pages_per_sec,
                        run_report.failover.crashes,
                        run_report.failover.redispatched,
                        run_report.shed,
                        identical
                    );

                    entries.push(report::object([
                        ("threads", report::uint(threads as u64)),
                        ("shards", report::uint(shards as u64)),
                        ("replicas", report::uint(replicas as u64)),
                        ("crash_rate", report::float(crash_rate)),
                        ("wall_ms", report::float(wall * 1e3)),
                        ("scrape_wall_ms", report::float(scrape_wall * 1e3)),
                        ("score_wall_ms", report::float(score_wall * 1e3)),
                        ("pages_per_sec", report::float(pages_per_sec)),
                        ("answered", report::uint(run_report.answered)),
                        ("unfetchable", report::uint(run_report.unfetchable)),
                        ("shed", report::uint(run_report.shed)),
                        ("shed_ratio", report::float(run_report.shed_ratio)),
                        ("shed_admission", report::uint(run_report.shed_by.admission)),
                        (
                            "shed_retries_exhausted",
                            report::uint(run_report.shed_by.retries_exhausted),
                        ),
                        ("crashes", report::uint(run_report.failover.crashes)),
                        ("detections", report::uint(run_report.failover.detections)),
                        ("recoveries", report::uint(run_report.failover.recoveries)),
                        (
                            "redispatched",
                            report::uint(run_report.failover.redispatched),
                        ),
                        ("dispatched", report::uint(run_report.routing.dispatched)),
                        (
                            "route_around",
                            report::uint(run_report.routing.route_around),
                        ),
                        ("parked", report::uint(run_report.routing.parked)),
                        ("hot_fanout", report::uint(run_report.routing.hot_fanout)),
                        (
                            "latency",
                            report::latency_summary_value(&run_report.latency),
                        ),
                        (
                            "virtual_elapsed_ms",
                            report::uint(run_report.virtual_elapsed_ms),
                        ),
                        (
                            "throughput_per_vsec",
                            report::float(run_report.throughput_per_vsec),
                        ),
                        ("verdicts_identical", report::boolean(identical)),
                    ]));
                }
            }
        }
    }
    kyp_exec::set_threads(0); // back to auto-detection

    assert!(
        all_identical,
        "id-sorted verdict streams must be byte-identical across every \
         shard count, replica fan-out, thread count and crash rate"
    );

    let section = report::object([
        ("scale", report::float(args.scale)),
        ("seed", report::uint(args.seed)),
        ("requests", report::uint(trace.len() as u64)),
        ("pool_urls", report::uint(pool.len() as u64)),
        ("duplicate_rate", report::float(workload.duplicate_rate)),
        ("sweep", serde_json::Value::Array(entries)),
    ]);
    let path = Path::new(report::BENCH_CLUSTER_REPORT_PATH);
    report::write_bench_section(path, "cluster_throughput", section).expect("write bench report");
    println!();
    println!("Sweep written to {}", path.display());
}
