//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. **Hellinger vs Jaccard** for the f2 consistency features — Jaccard
//!    discards term frequencies, weakening the consistency signal the
//!    paper's conjecture relies on.
//! 2. **Extended distributions** — restore the copyright and OCR-image
//!    distributions the paper tabled (Table I) but discarded from f2
//!    (14 distributions → 91 pairs → 237 features): does the extra,
//!    slower signal pay?
//! 3. **Feature budget** — accuracy vs number of boosting trees, probing
//!    the paper's "small model, small training set" design point.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_ablation_design -- --scale 0.1`

use kyp_bench::{EvalArgs, EvalRow, ExperimentEnv};
use kyp_core::{ConsistencyMetric, ExtractorConfig, FeatureExtractor};
use kyp_datagen::Corpus;
use kyp_ml::{Dataset, GbmParams, GradientBoosting};
use kyp_web::Browser;

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let variants: [(&str, ExtractorConfig); 3] = [
        ("Hellinger (paper)", ExtractorConfig::default()),
        (
            "Jaccard f2",
            ExtractorConfig {
                consistency_metric: ConsistencyMetric::Jaccard,
                ..ExtractorConfig::default()
            },
        ),
        (
            "extended 237",
            ExtractorConfig {
                extended_distributions: true,
                ..ExtractorConfig::default()
            },
        ),
    ];

    println!("Design ablations (threshold 0.7, English test):");
    EvalRow::print_header("Variant");
    for (name, config) in variants {
        let extractor = FeatureExtractor::with_config(c.ranker.clone(), config);
        let (train, test) = datasets(c, &extractor);
        let model = GradientBoosting::fit(&train, &GbmParams::default());
        let scores = model.predict_dataset(&test);
        EvalRow::compute(name, &scores, test.labels(), 0.7).print();
    }

    // Tree-budget sweep with the paper's default features.
    println!();
    println!("Boosting-tree budget (fall features):");
    EvalRow::print_header("Trees");
    let extractor = FeatureExtractor::new(c.ranker.clone());
    let (train, test) = datasets(c, &extractor);
    for n_trees in [10, 25, 50, 100, 150, 300] {
        let model = GradientBoosting::fit(
            &train,
            &GbmParams {
                n_trees,
                ..GbmParams::default()
            },
        );
        let scores = model.predict_dataset(&test);
        EvalRow::compute(format!("{n_trees}"), &scores, test.labels(), 0.7).print();
    }
}

fn datasets(c: &Corpus, extractor: &FeatureExtractor) -> (Dataset, Dataset) {
    let browser = Browser::new(&c.world);
    let scrape = |legit: &[String], phish: &[String]| {
        let mut data = Dataset::new(extractor.feature_count());
        for (urls, label) in [(legit, false), (phish, true)] {
            for url in urls {
                if let Ok(visit) = browser.visit(url) {
                    data.push_row(&extractor.extract(&visit), label);
                }
            }
        }
        data
    };
    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let phish_test: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    let train = scrape(&c.leg_train, &phish_train);
    let test = scrape(c.english_test(), &phish_test);
    (train, test)
}
