//! Serving-throughput sweep: `kyp-serve` over threads × batch size ×
//! cache on/off.
//!
//! Generates a corpus, trains the detector, then replays one seeded
//! 20%-duplicate workload through a [`ScoringService`] under every
//! configuration of the sweep, measuring wall-clock pages/second. Two
//! invariants are asserted for every configuration:
//!
//! - per batch size, the stream of `ServeResponse::verdict_line`
//!   projections is byte-identical to that batch size's first (1-thread,
//!   cache-off) run — the service's determinism contract across threads
//!   and cache settings;
//! - the *virtual* timing report (latency percentiles, queue and batch
//!   counters) is identical cache-on vs cache-off, because the virtual
//!   cost model is cache-independent.
//!
//! What the cache buys is wall-clock time: hits skip feature extraction
//! and both model stages, so the cache-on rows should show higher
//! pages/second on any workload with repeats. Results go to
//! `BENCH_serve.json` at the repo root.
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_serve_throughput -- --scale 0.02 --threads 1,2`

use kyp_bench::{harness, report, EvalArgs, ExperimentEnv, TimedSource};
use kyp_core::{DetectorConfig, PhishDetector, Pipeline, TargetIdentifier};
use kyp_serve::{
    generate, ArrivalPattern, BatchPolicy, CacheConfig, ScoringService, ScraperSource, ServeConfig,
    ServeRequest, WorkloadConfig,
};
use kyp_web::ResilientBrowser;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Timing repetitions per sweep point (wall time takes the minimum).
const REPS: usize = 3;

/// Batch sizes swept at every thread count.
const BATCH_SIZES: [usize; 2] = [1, 8];

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let phish_train: Vec<String> = c.phish_train.iter().map(|r| r.url.clone()).collect();
    let train = harness::scrape_dataset(c, &env.extractor, &c.leg_train, &phish_train);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let identifier = TargetIdentifier::new(Arc::new(c.engine.clone()));
    let pipeline = Pipeline::new(env.extractor.clone(), detector, identifier);

    // The workload pool: every test-set URL, phish and legitimate alike.
    let mut pool: Vec<String> = c.phish_test.iter().map(|r| r.url.clone()).collect();
    pool.extend(c.english_test().iter().cloned());
    let workload = WorkloadConfig {
        seed: args.seed,
        requests: (pool.len() * 2).clamp(100, 4_000),
        duplicate_rate: 0.2,
        arrival: ArrivalPattern::Bursty {
            burst: 16,
            burst_gap_ms: 1,
            idle_gap_ms: 40,
        },
        fault_seed: 0,
        fault_rate: 0.0,
    };
    let trace: Vec<ServeRequest> = generate(&workload, &pool);
    eprintln!(
        "[serve] {} requests over {} urls (duplicate rate {})",
        trace.len(),
        pool.len(),
        workload.duplicate_rate
    );

    let sweep = if args.threads.is_empty() {
        vec![1, 2, 4]
    } else {
        args.threads.clone()
    };

    println!(
        "Serving throughput sweep ({} requests, best of {REPS} reps per point)",
        trace.len()
    );
    println!(
        "{:>8} {:>10} {:>7} {:>12} {:>11} {:>11} {:>12} {:>10} {:>8} {:>10}",
        "Threads",
        "MaxBatch",
        "Cache",
        "Wall ms",
        "Scrape ms",
        "Score ms",
        "Pages/sec",
        "p99 ms",
        "Hits",
        "Identical"
    );

    // One verdict-stream baseline per batch size: batching changes the
    // schedule (and so the shed set and completion order), but for a given
    // schedule the stream must be identical across threads and cache
    // settings.
    let mut baseline_lines: std::collections::HashMap<usize, Vec<String>> =
        std::collections::HashMap::new();
    let mut entries = Vec::new();
    let mut all_identical = true;
    // pages/sec per (threads, batch) pair, cache off then on, for the
    // cache-speedup summary.
    let mut speedups: Vec<(usize, usize, f64, f64)> = Vec::new();

    for &threads in &sweep {
        kyp_exec::set_threads(threads);
        for &max_batch in &BATCH_SIZES {
            let mut pair = [0.0f64; 2];
            for (slot, cache_on) in [(0usize, false), (1usize, true)] {
                let mut wall = f64::INFINITY;
                let mut scrape_wall = 0.0f64;
                let mut lines: Vec<String> = Vec::new();
                let mut last_report = None;
                for _ in 0..REPS {
                    let browser = ResilientBrowser::new(&c.world);
                    let (source, scrape_nanos) =
                        TimedSource::new(ScraperSource::with_browser(browser));
                    let mut service = ScoringService::new(
                        pipeline.clone(),
                        source,
                        ServeConfig {
                            queue_capacity: 64,
                            batch: BatchPolicy {
                                max_batch,
                                max_delay_ms: 25,
                            },
                            cache: cache_on.then(CacheConfig::default),
                            ..ServeConfig::default()
                        },
                    );
                    let t0 = Instant::now();
                    let responses = service.run_trace(&trace);
                    let elapsed = t0.elapsed().as_secs_f64();
                    if elapsed < wall {
                        wall = elapsed;
                        scrape_wall =
                            scrape_nanos.load(std::sync::atomic::Ordering::Relaxed) as f64 * 1e-9;
                    }
                    lines = responses
                        .iter()
                        .map(kyp_serve::ServeResponse::verdict_line)
                        .collect();
                    last_report = Some(service.report());
                }
                let run_report = last_report.expect("at least one rep ran");
                // Everything that is not time inside the page source —
                // queueing, batching, feature extraction, both model
                // stages — is the score share.
                let score_wall = (wall - scrape_wall).max(0.0);
                if run_report.cache.hits + run_report.cascade.url_only > run_report.answered {
                    eprintln!(
                        "[serve] warning: cache hits ({}) + cascade URL-only finals ({}) exceed \
                         answered ({}) — a request was double-counted as both a cache hit and a \
                         cascade hit",
                        run_report.cache.hits, run_report.cascade.url_only, run_report.answered
                    );
                }
                if run_report.shed_ratio > 0.5 {
                    eprintln!(
                        "[serve] warning: threads={threads} max_batch={max_batch} cache={} \
                         shed {:.0}% of requests — the configuration, not the load, is the problem",
                        if cache_on { "on" } else { "off" },
                        run_report.shed_ratio * 100.0
                    );
                }

                let identical = match baseline_lines.get(&max_batch) {
                    None => {
                        baseline_lines.insert(max_batch, lines);
                        true
                    }
                    Some(base) => *base == lines,
                };
                all_identical &= identical;

                let pages_per_sec = if wall > 0.0 {
                    run_report.answered as f64 / wall
                } else {
                    0.0
                };
                pair[slot] = pages_per_sec;

                println!(
                    "{threads:>8} {max_batch:>10} {:>7} {:>12.1} {:>11.1} {:>11.1} {:>12.0} {:>10} {:>8} {:>10}",
                    if cache_on { "on" } else { "off" },
                    wall * 1e3,
                    scrape_wall * 1e3,
                    score_wall * 1e3,
                    pages_per_sec,
                    run_report.latency.p99_ms,
                    run_report.cache.hits,
                    identical
                );

                let mut entry = report::object([
                    ("threads", report::uint(threads as u64)),
                    ("max_batch", report::uint(max_batch as u64)),
                    ("cache", report::boolean(cache_on)),
                    ("wall_ms", report::float(wall * 1e3)),
                    ("scrape_wall_ms", report::float(scrape_wall * 1e3)),
                    ("score_wall_ms", report::float(score_wall * 1e3)),
                    ("pages_per_sec", report::float(pages_per_sec)),
                    ("answered", report::uint(run_report.answered)),
                    ("shed", report::uint(run_report.shed)),
                    ("shed_ratio", report::float(run_report.shed_ratio)),
                    ("cache_hits", report::uint(run_report.cache.hits)),
                    (
                        "latency",
                        report::latency_summary_value(&run_report.latency),
                    ),
                    (
                        "virtual_elapsed_ms",
                        report::uint(run_report.virtual_elapsed_ms),
                    ),
                    ("verdicts_identical", report::boolean(identical)),
                ]);
                report::push_field(
                    &mut entry,
                    "batches",
                    report::uint(run_report.batches.batches),
                );
                entries.push(entry);
            }
            speedups.push((threads, max_batch, pair[0], pair[1]));
        }
    }
    kyp_exec::set_threads(0); // back to auto-detection

    assert!(
        all_identical,
        "per batch size, verdict streams must be byte-identical across \
         every thread count and cache setting"
    );

    println!();
    println!("Cache wall-clock speedup (pages/sec on ÷ off):");
    let mut speedup_entries = Vec::new();
    for (threads, max_batch, off, on) in &speedups {
        let ratio = if *off > 0.0 { on / off } else { 0.0 };
        println!("  threads {threads}, max_batch {max_batch}: {ratio:.2}x");
        speedup_entries.push(report::object([
            ("threads", report::uint(*threads as u64)),
            ("max_batch", report::uint(*max_batch as u64)),
            ("cache_speedup", report::float(ratio)),
        ]));
    }

    let section = report::object([
        ("scale", report::float(args.scale)),
        ("seed", report::uint(args.seed)),
        ("requests", report::uint(trace.len() as u64)),
        ("pool_urls", report::uint(pool.len() as u64)),
        ("duplicate_rate", report::float(workload.duplicate_rate)),
        ("sweep", serde_json::Value::Array(entries)),
        ("cache_speedups", serde_json::Value::Array(speedup_entries)),
    ]);
    let path = Path::new(report::BENCH_SERVE_REPORT_PATH);
    report::write_bench_section(path, "serve_throughput", section).expect("write bench report");
    println!();
    println!("Sweep written to {}", path.display());
}
