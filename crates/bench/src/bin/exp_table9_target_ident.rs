//! Regenerates **Table IX** (target identification results).
//!
//! Runs the five-step target identifier over the `phishBrand` replica and
//! counts, for top-1/top-2/top-3 candidate lists: correctly identified
//! targets, pages whose target is unknown even to ground truth (hint-less
//! kits), and missed targets. Success rate counts unknowns as successes,
//! as in the paper ("these webpages ... are thus included in the
//! computing of the success rate" — they cannot be attributed by any
//! method).
//!
//! Run: `cargo run --release -p kyp-bench --bin exp_table9_target_ident -- --scale 0.05`

use kyp_bench::{EvalArgs, ExperimentEnv};
use kyp_core::{TargetIdentifier, TargetVerdict};
use kyp_web::Browser;
use std::sync::Arc;

fn main() {
    let args = EvalArgs::parse();
    let env = ExperimentEnv::prepare(&args);
    let c = &env.corpus;

    let identifier = TargetIdentifier::new(Arc::new(c.engine.clone()));
    let browser = Browser::new(&c.world);

    let mut total = 0usize;
    let mut unknown_truth = 0usize;
    let mut wrongly_legit = 0usize;
    let mut identified = [0usize; 3]; // top-1, top-2, top-3
    let mut only_one_candidate = 0usize;

    for record in &c.phish_brand {
        let Ok(visit) = browser.visit(&record.url) else {
            continue;
        };
        total += 1;
        let verdict = identifier.identify(&visit);

        match &record.target {
            None => {
                // Ground truth itself has no target (paper: 17/600).
                unknown_truth += 1;
            }
            Some(target) => match &verdict {
                TargetVerdict::Phish { candidates } => {
                    for (slot, k) in (1..=3).enumerate() {
                        if verdict.has_target_in_top(target, k) {
                            identified[slot] += 1;
                        }
                    }
                    if candidates.len() == 1 {
                        only_one_candidate += 1;
                    }
                }
                TargetVerdict::Legitimate { .. } => wrongly_legit += 1,
                TargetVerdict::Unknown => {}
            },
        }
    }

    println!("Table IX: Target identification results ({total} phishBrand pages)");
    println!(
        "{:<8} {:>11} {:>9} {:>8} {:>13}",
        "Targets", "Identified", "Unknown", "Missed", "Success rate"
    );
    for (slot, k) in (1..=3).enumerate() {
        let id = identified[slot];
        let missed = total - id - unknown_truth;
        let success = 100.0 * (id + unknown_truth) as f64 / total.max(1) as f64;
        println!("top-{k:<4} {id:>11} {unknown_truth:>9} {missed:>8} {success:>12.1}%");
    }
    println!();
    println!("Pages with a single identified candidate: {only_one_candidate}  [paper: 311/600]");
    println!("Phish wrongly confirmed legitimate by search: {wrongly_legit}");
}
