//! Criterion micro-benchmarks for the paper's Table VIII stages plus the
//! training-side costs:
//!
//! - `scrape`            — simulated browser visit (Table VIII row 1)
//! - `load_json`         — scraped-bundle deserialisation (row 2)
//! - `extract_features`  — the 212-feature computation (row 3)
//! - `classify`          — one Gradient Boosting prediction (row 4)
//! - `keyterms`          — boosted prominent term extraction (Section V-A)
//! - `target_identify`   — the five-step process on one phish (Section V-B)
//! - `gbm_train`         — fitting the detector on a small training set
//!
//! Run: `cargo bench -p kyp-bench`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kyp_core::{
    keyterms, DataSources, DetectorConfig, FeatureExtractor, PhishDetector, TargetIdentifier,
};
use kyp_datagen::{CampaignConfig, Corpus};
use kyp_ml::Dataset;
use kyp_web::{Browser, VisitedPage};
use std::hint::black_box;
use std::sync::Arc;

struct BenchEnv {
    corpus: Corpus,
    extractor: FeatureExtractor,
    detector: PhishDetector,
    train: Dataset,
    phish_visit: VisitedPage,
    phish_features: Vec<f64>,
    phish_json: String,
}

fn env() -> BenchEnv {
    let corpus = Corpus::generate(&CampaignConfig {
        seed: 99,
        phish_train: 60,
        phish_test: 30,
        phish_brand: 10,
        leg_train: 240,
        english_test: 60,
        other_language_test: 20,
    });
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let browser = Browser::new(&corpus.world);
    let mut train = Dataset::new(kyp_core::features::FEATURE_COUNT);
    for url in &corpus.leg_train {
        train.push_row(&extractor.extract(&browser.visit(url).unwrap()), false);
    }
    for r in &corpus.phish_train {
        train.push_row(&extractor.extract(&browser.visit(&r.url).unwrap()), true);
    }
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let phish_visit = browser.visit(&corpus.phish_test[0].url).unwrap();
    let phish_features = extractor.extract(&phish_visit);
    let phish_json = serde_json::to_string(&phish_visit).unwrap();
    BenchEnv {
        corpus,
        extractor,
        detector,
        train,
        phish_visit,
        phish_features,
        phish_json,
    }
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let env = env();
    let browser = Browser::new(&env.corpus.world);
    let url = env.corpus.phish_test[0].url.clone();

    c.bench_function("scrape", |b| {
        b.iter(|| black_box(browser.visit(black_box(&url)).unwrap()));
    });

    c.bench_function("load_json", |b| {
        b.iter(|| {
            let v: VisitedPage = serde_json::from_str(black_box(&env.phish_json)).unwrap();
            black_box(v)
        });
    });

    c.bench_function("extract_features", |b| {
        b.iter(|| black_box(env.extractor.extract(black_box(&env.phish_visit))));
    });

    c.bench_function("classify", |b| {
        b.iter(|| black_box(env.detector.score(black_box(&env.phish_features))));
    });

    c.bench_function("keyterms", |b| {
        b.iter_batched(
            || DataSources::from_page(&env.phish_visit),
            |sources| black_box(keyterms::boosted_prominent_terms(&sources, 5)),
            BatchSize::SmallInput,
        );
    });

    let identifier = TargetIdentifier::new(Arc::new(env.corpus.engine.clone()));
    c.bench_function("target_identify", |b| {
        b.iter(|| black_box(identifier.identify(black_box(&env.phish_visit))));
    });

    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("gbm_train_300x212", |b| {
        b.iter(|| {
            black_box(PhishDetector::train(
                black_box(&env.train),
                &DetectorConfig::default(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline_stages);
criterion_main!(benches);
