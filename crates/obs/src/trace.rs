//! The span/event tracer: an append-only log of what the pipeline did,
//! stamped from caller-provided **virtual** timestamps and rendered as
//! newline-delimited json.
//!
//! The tracer owns no clock: every record carries the `ts_ms` its caller
//! read from the relevant `kyp-web` virtual clock (or 0 for purely
//! computational stages), so the log is bit-reproducible and kyp-lint's
//! D02 rule (no `Instant`/`SystemTime`) holds by construction.

use crate::json::{push_f64, push_str_literal};

/// Identifier of an open span, handed back by [`Tracer::begin_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

/// A typed field value attached to a trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string field.
    Str(String),
    /// An unsigned integer field.
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A float field (rendered shortest-roundtrip; non-finite → null).
    F64(f64),
    /// A boolean field.
    Bool(bool),
}

impl FieldValue {
    fn render_into(&self, out: &mut String) {
        match self {
            FieldValue::Str(s) => push_str_literal(out, s),
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => push_f64(out, *v),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Record {
    SpanBegin { span: u64, name: String },
    SpanEnd { span: u64, name: String },
    Event { name: String },
}

#[derive(Debug, Clone, PartialEq)]
struct Line {
    seq: u64,
    ts_ms: u64,
    record: Record,
    fields: Vec<(String, FieldValue)>,
}

/// An append-only span/event log.
///
/// # Examples
///
/// ```
/// use kyp_obs::{FieldValue, Tracer};
///
/// let mut t = Tracer::new();
/// let span = t.begin_span(0, "scrape", &[("url", FieldValue::Str("http://a/".into()))]);
/// t.event(4, "fetch.attempt", &[("ok", FieldValue::Bool(true))]);
/// t.end_span(9, span, &[]);
/// let ndjson = t.render_ndjson();
/// assert_eq!(ndjson.lines().count(), 3);
/// assert!(ndjson.starts_with("{\"seq\":0,\"ts\":0,\"ev\":\"span_begin\""));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    lines: Vec<Line>,
    /// Open spans: (id, name) pairs, scanned linearly (spans nest only a
    /// few deep).
    open: Vec<(u64, String)>,
    next_span: u64,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records logged so far.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    fn push(&mut self, ts_ms: u64, record: Record, fields: &[(&str, FieldValue)]) {
        let seq = self.lines.len() as u64;
        self.lines.push(Line {
            seq,
            ts_ms,
            record,
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        });
    }

    /// Opens a span named `name` at virtual instant `ts_ms`.
    pub fn begin_span(&mut self, ts_ms: u64, name: &str, fields: &[(&str, FieldValue)]) -> SpanId {
        self.next_span += 1;
        let id = self.next_span;
        self.open.push((id, name.to_owned()));
        self.push(
            ts_ms,
            Record::SpanBegin {
                span: id,
                name: name.to_owned(),
            },
            fields,
        );
        SpanId(id)
    }

    /// Closes `span` at virtual instant `ts_ms`. Closing an unknown (or
    /// already closed) span logs nothing.
    pub fn end_span(&mut self, ts_ms: u64, span: SpanId, fields: &[(&str, FieldValue)]) {
        let Some(pos) = self.open.iter().position(|(id, _)| *id == span.0) else {
            return;
        };
        let (id, name) = self.open.remove(pos);
        self.push(ts_ms, Record::SpanEnd { span: id, name }, fields);
    }

    /// Logs a point event at virtual instant `ts_ms`.
    pub fn event(&mut self, ts_ms: u64, name: &str, fields: &[(&str, FieldValue)]) {
        self.push(
            ts_ms,
            Record::Event {
                name: name.to_owned(),
            },
            fields,
        );
    }

    /// Renders the log as newline-delimited json, one record per line, in
    /// append order. Identical logs render byte-identically.
    pub fn render_ndjson(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(&format!(
                "{{\"seq\":{},\"ts\":{},\"ev\":",
                line.seq, line.ts_ms
            ));
            let name = match &line.record {
                Record::SpanBegin { span, name } => {
                    out.push_str(&format!("\"span_begin\",\"span\":{span},\"name\":"));
                    name
                }
                Record::SpanEnd { span, name } => {
                    out.push_str(&format!("\"span_end\",\"span\":{span},\"name\":"));
                    name
                }
                Record::Event { name } => {
                    out.push_str("\"event\",\"name\":");
                    name
                }
            };
            push_str_literal(&mut out, name);
            if !line.fields.is_empty() {
                out.push_str(",\"fields\":{");
                for (i, (key, value)) in line.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_str_literal(&mut out, key);
                    out.push(':');
                    value.render_into(&mut out);
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_keep_sequence_and_timestamps() {
        let mut t = Tracer::new();
        let s = t.begin_span(10, "outer", &[]);
        t.event(12, "tick", &[("n", FieldValue::U64(1))]);
        t.end_span(20, s, &[("ok", FieldValue::Bool(true))]);
        let nd = t.render_ndjson();
        let lines: Vec<&str> = nd.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"seq\":0") && lines[0].contains("\"ts\":10"));
        assert!(lines[1].contains("\"fields\":{\"n\":1}"));
        assert!(lines[2].contains("\"span_end\"") && lines[2].contains("\"ok\":true"));
    }

    #[test]
    fn spans_nest_and_close_by_id() {
        let mut t = Tracer::new();
        let a = t.begin_span(0, "a", &[]);
        let b = t.begin_span(1, "b", &[]);
        t.end_span(2, a, &[]);
        t.end_span(3, b, &[]);
        let nd = t.render_ndjson();
        assert!(nd.contains("\"span\":1,\"name\":\"a\""));
        assert!(nd.contains("\"span\":2,\"name\":\"b\""));
        // Double-close is a no-op.
        let before = t.len();
        t.end_span(4, a, &[]);
        assert_eq!(t.len(), before);
    }

    #[test]
    fn render_is_reproducible() {
        let build = || {
            let mut t = Tracer::new();
            let s = t.begin_span(0, "x", &[("f", FieldValue::F64(0.25))]);
            t.end_span(5, s, &[]);
            t.render_ndjson()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn every_line_is_valid_json_shape() {
        let mut t = Tracer::new();
        t.event(
            0,
            "quote\"and\\slash",
            &[("k", FieldValue::Str("v\n".into()))],
        );
        let nd = t.render_ndjson();
        assert!(nd.contains("quote\\\"and\\\\slash"));
        assert!(nd.contains("\"v\\n\""));
    }
}
