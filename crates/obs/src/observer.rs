//! The [`PipelineObserver`] seam: per-stage hooks every instrumented
//! component accepts, plus the [`Recorder`]/[`replay`] bridge that keeps
//! observation deterministic across the thread pool.
//!
//! Every hook has an empty default body, so [`NoopObserver`] (and any
//! partial implementation) costs nothing at the call site: the optimizer
//! sees an empty inlined function and deletes the call.

/// The feature families of the paper's Section IV, in extraction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureFamily {
    /// f1 — URL character statistics.
    F1Url,
    /// f2 — term consistency across data sources.
    F2TermConsistency,
    /// f3 — main-level-domain usage.
    F3MldUsage,
    /// f4 — registered-domain-name usage.
    F4RdnUsage,
    /// f5 — page content statistics.
    F5Content,
}

impl FeatureFamily {
    /// Short stable label (`"f1"` … `"f5"`) used in metric names.
    pub fn label(self) -> &'static str {
        match self {
            FeatureFamily::F1Url => "f1",
            FeatureFamily::F2TermConsistency => "f2",
            FeatureFamily::F3MldUsage => "f3",
            FeatureFamily::F4RdnUsage => "f4",
            FeatureFamily::F5Content => "f5",
        }
    }
}

/// The terminal classification a page received, mirroring
/// `PipelineVerdict` without carrying its payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// Below the decision threshold.
    Legitimate,
    /// Flagged by the detector but confirmed legitimate by target
    /// identification.
    ConfirmedLegitimate,
    /// Flagged, with target candidates identified.
    Phish,
    /// Flagged, but no target could be identified.
    Suspicious,
}

impl VerdictKind {
    /// Stable snake_case name used in metric names and trace fields.
    pub fn name(self) -> &'static str {
        match self {
            VerdictKind::Legitimate => "legitimate",
            VerdictKind::ConfirmedLegitimate => "confirmed_legitimate",
            VerdictKind::Phish => "phish",
            VerdictKind::Suspicious => "suspicious",
        }
    }
}

/// Which stage of the serving cascade produced a verdict.
///
/// Carried end-to-end by the provenance-aware verdict API: every serve,
/// cluster and store verdict records the stage that decided it, and the
/// sink counts verdicts per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictStage {
    /// The cheap URL-only pre-filter decided without a scrape.
    UrlOnly,
    /// The full scrape-and-classify pipeline decided.
    Full,
    /// A previously computed verdict was replayed from the cache.
    Cached,
    /// The request was shed at admission; no verdict was computed.
    Shed,
}

impl VerdictStage {
    /// Stable snake_case name used in metric names and wire fields.
    pub fn name(self) -> &'static str {
        match self {
            VerdictStage::UrlOnly => "url_only",
            VerdictStage::Full => "full",
            VerdictStage::Cached => "cached",
            VerdictStage::Shed => "shed",
        }
    }

    /// The inverse of [`VerdictStage::name`]: `None` for unknown names.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "url_only" => Some(VerdictStage::UrlOnly),
            "full" => Some(VerdictStage::Full),
            "cached" => Some(VerdictStage::Cached),
            "shed" => Some(VerdictStage::Shed),
            _ => None,
        }
    }
}

/// What the URL-only cascade pre-filter concluded for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CascadeOutcome {
    /// The URL score fell outside the uncertainty band; the verdict is
    /// final and the scrape is skipped entirely.
    UrlOnlyFinal,
    /// The URL score fell inside the band; the request falls through to
    /// the full pipeline.
    Fallthrough,
    /// The URL did not parse; the full pipeline decides (and reports the
    /// fetch failure).
    Unscorable,
}

impl CascadeOutcome {
    /// Stable snake_case name used in metric names.
    pub fn name(self) -> &'static str {
        match self {
            CascadeOutcome::UrlOnlyFinal => "url_only",
            CascadeOutcome::Fallthrough => "fallthrough",
            CascadeOutcome::Unscorable => "unscorable",
        }
    }
}

/// What a target-identification step concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetStepOutcome {
    /// The step proved the site operates its own prominent terms.
    ConfirmedLegitimate,
    /// The step produced this many target candidates (step 5 ranks them).
    Candidates {
        /// Number of candidate target domains found.
        count: usize,
    },
    /// The step was inconclusive; the next step runs.
    Continue,
}

/// How a scrape ended, summarised for observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrapeObservation {
    /// The page was fetched (possibly with degraded sources).
    Fetched {
        /// Total visit attempts, including the successful one.
        attempts: u32,
        /// Virtual elapsed milliseconds spent scraping.
        elapsed_ms: u64,
        /// Whether any data source was unavailable.
        degraded: bool,
    },
    /// The scrape gave up.
    Failed {
        /// Stable wire name of the terminal failure cause.
        cause: String,
        /// Total visit attempts made.
        attempts: u32,
        /// Virtual elapsed milliseconds spent before giving up.
        elapsed_ms: u64,
    },
}

/// Per-stage hooks for the classification pipeline.
///
/// Implementations observe; they must not influence control flow. All
/// methods have empty default bodies so observers implement only what
/// they need and the no-op case compiles away.
pub trait PipelineObserver {
    /// The virtual clock advanced to `now_ms`; subsequent records should
    /// be stamped with it.
    fn clock(&mut self, _now_ms: u64) {}

    /// A scrape of `url` is starting.
    fn scrape_start(&mut self, _url: &str) {}

    /// The scrape of `url` finished.
    fn scrape_end(&mut self, _url: &str, _outcome: &ScrapeObservation) {}

    /// One fetch attempt completed, costing `cost_ms` virtual
    /// milliseconds.
    fn fetch_attempt(&mut self, _url: &str, _cost_ms: u64, _ok: bool) {}

    /// Classification of `url` is starting.
    fn page_start(&mut self, _url: &str) {}

    /// One feature family finished extracting `features` values.
    fn feature_family(&mut self, _family: FeatureFamily, _features: usize) {}

    /// The detector scored the page.
    fn detector_score(&mut self, _score: f64, _flagged: bool) {}

    /// A target-identification step ran.
    fn target_step(&mut self, _step: u8, _outcome: &TargetStepOutcome) {}

    /// The page received its terminal verdict, closing the page.
    fn verdict(&mut self, _kind: VerdictKind) {}

    /// The URL-only cascade pre-filter screened a request.
    fn cascade_prescreen(&mut self, _outcome: CascadeOutcome) {}

    /// A verdict was delivered to a caller, attributed to the stage that
    /// decided it.
    fn verdict_stage(&mut self, _stage: VerdictStage) {}

    /// The serving layer answered a request from the verdict cache.
    fn cache_hit(&mut self) {}

    /// The serving layer missed the verdict cache.
    fn cache_miss(&mut self) {}

    /// The serving layer shed a request at admission.
    fn shed(&mut self) {}

    /// The serving layer flushed a batch of `size` requests.
    fn batch_flush(&mut self, _size: usize) {}
}

/// The zero-cost observer: every hook is the empty default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl PipelineObserver for NoopObserver {}

/// One recorded observer call, with owned payloads so buffers can cross
/// the thread pool's join.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// [`PipelineObserver::clock`].
    Clock {
        /// Virtual now, in milliseconds.
        now_ms: u64,
    },
    /// [`PipelineObserver::scrape_start`].
    ScrapeStart {
        /// Scraped URL.
        url: String,
    },
    /// [`PipelineObserver::scrape_end`].
    ScrapeEnd {
        /// Scraped URL.
        url: String,
        /// How the scrape ended.
        outcome: ScrapeObservation,
    },
    /// [`PipelineObserver::fetch_attempt`].
    FetchAttempt {
        /// Fetched URL.
        url: String,
        /// Virtual cost of the attempt.
        cost_ms: u64,
        /// Whether the attempt succeeded.
        ok: bool,
    },
    /// [`PipelineObserver::page_start`].
    PageStart {
        /// Page URL.
        url: String,
    },
    /// [`PipelineObserver::feature_family`].
    FeatureFamily {
        /// Which family.
        family: FeatureFamily,
        /// Number of feature values it produced.
        features: usize,
    },
    /// [`PipelineObserver::detector_score`].
    DetectorScore {
        /// The GBM score.
        score: f64,
        /// Whether the score crossed the decision threshold.
        flagged: bool,
    },
    /// [`PipelineObserver::target_step`].
    TargetStep {
        /// Step number (1–5).
        step: u8,
        /// What the step concluded.
        outcome: TargetStepOutcome,
    },
    /// [`PipelineObserver::verdict`].
    Verdict {
        /// The terminal verdict kind.
        kind: VerdictKind,
    },
    /// [`PipelineObserver::cascade_prescreen`].
    CascadePrescreen {
        /// What the pre-filter concluded.
        outcome: CascadeOutcome,
    },
    /// [`PipelineObserver::verdict_stage`].
    VerdictStageDelivered {
        /// The stage that decided the delivered verdict.
        stage: VerdictStage,
    },
    /// [`PipelineObserver::cache_hit`].
    CacheHit,
    /// [`PipelineObserver::cache_miss`].
    CacheMiss,
    /// [`PipelineObserver::shed`].
    Shed,
    /// [`PipelineObserver::batch_flush`].
    BatchFlush {
        /// Number of requests in the flushed batch.
        size: usize,
    },
}

/// An observer that buffers events for later [`replay`].
///
/// This is the determinism bridge for parallel stages: each worker
/// records into its own `Recorder` (a pure function of the item it
/// processed), and after the pool joins, the caller replays the buffers
/// in **input order** into the real observer. The observed stream is
/// then independent of how work was scheduled across threads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    events: Vec<ObsEvent>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in call order.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Consumes the recorder, yielding its events.
    pub fn into_events(self) -> Vec<ObsEvent> {
        self.events
    }
}

impl PipelineObserver for Recorder {
    fn clock(&mut self, now_ms: u64) {
        self.events.push(ObsEvent::Clock { now_ms });
    }

    fn scrape_start(&mut self, url: &str) {
        self.events.push(ObsEvent::ScrapeStart {
            url: url.to_owned(),
        });
    }

    fn scrape_end(&mut self, url: &str, outcome: &ScrapeObservation) {
        self.events.push(ObsEvent::ScrapeEnd {
            url: url.to_owned(),
            outcome: outcome.clone(),
        });
    }

    fn fetch_attempt(&mut self, url: &str, cost_ms: u64, ok: bool) {
        self.events.push(ObsEvent::FetchAttempt {
            url: url.to_owned(),
            cost_ms,
            ok,
        });
    }

    fn page_start(&mut self, url: &str) {
        self.events.push(ObsEvent::PageStart {
            url: url.to_owned(),
        });
    }

    fn feature_family(&mut self, family: FeatureFamily, features: usize) {
        self.events
            .push(ObsEvent::FeatureFamily { family, features });
    }

    fn detector_score(&mut self, score: f64, flagged: bool) {
        self.events.push(ObsEvent::DetectorScore { score, flagged });
    }

    fn target_step(&mut self, step: u8, outcome: &TargetStepOutcome) {
        self.events.push(ObsEvent::TargetStep {
            step,
            outcome: *outcome,
        });
    }

    fn verdict(&mut self, kind: VerdictKind) {
        self.events.push(ObsEvent::Verdict { kind });
    }

    fn cascade_prescreen(&mut self, outcome: CascadeOutcome) {
        self.events.push(ObsEvent::CascadePrescreen { outcome });
    }

    fn verdict_stage(&mut self, stage: VerdictStage) {
        self.events.push(ObsEvent::VerdictStageDelivered { stage });
    }

    fn cache_hit(&mut self) {
        self.events.push(ObsEvent::CacheHit);
    }

    fn cache_miss(&mut self) {
        self.events.push(ObsEvent::CacheMiss);
    }

    fn shed(&mut self) {
        self.events.push(ObsEvent::Shed);
    }

    fn batch_flush(&mut self, size: usize) {
        self.events.push(ObsEvent::BatchFlush { size });
    }
}

/// Replays recorded events into `target`, in order.
pub fn replay(events: &[ObsEvent], target: &mut dyn PipelineObserver) {
    for event in events {
        match event {
            ObsEvent::Clock { now_ms } => target.clock(*now_ms),
            ObsEvent::ScrapeStart { url } => target.scrape_start(url),
            ObsEvent::ScrapeEnd { url, outcome } => target.scrape_end(url, outcome),
            ObsEvent::FetchAttempt { url, cost_ms, ok } => {
                target.fetch_attempt(url, *cost_ms, *ok);
            }
            ObsEvent::PageStart { url } => target.page_start(url),
            ObsEvent::FeatureFamily { family, features } => {
                target.feature_family(*family, *features);
            }
            ObsEvent::DetectorScore { score, flagged } => {
                target.detector_score(*score, *flagged);
            }
            ObsEvent::TargetStep { step, outcome } => target.target_step(*step, outcome),
            ObsEvent::Verdict { kind } => target.verdict(*kind),
            ObsEvent::CascadePrescreen { outcome } => target.cascade_prescreen(*outcome),
            ObsEvent::VerdictStageDelivered { stage } => target.verdict_stage(*stage),
            ObsEvent::CacheHit => target.cache_hit(),
            ObsEvent::CacheMiss => target.cache_miss(),
            ObsEvent::Shed => target.shed(),
            ObsEvent::BatchFlush { size } => target.batch_flush(*size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_replays_into_another_observer_verbatim() {
        let mut rec = Recorder::new();
        rec.clock(5);
        rec.page_start("http://a/");
        rec.feature_family(FeatureFamily::F1Url, 14);
        rec.detector_score(0.9, true);
        rec.target_step(1, &TargetStepOutcome::Continue);
        rec.target_step(2, &TargetStepOutcome::Candidates { count: 3 });
        rec.verdict(VerdictKind::Phish);
        rec.cascade_prescreen(CascadeOutcome::Fallthrough);
        rec.verdict_stage(VerdictStage::Full);
        rec.cache_miss();
        rec.batch_flush(4);

        let mut copy = Recorder::new();
        replay(rec.events(), &mut copy);
        assert_eq!(rec, copy);
    }

    #[test]
    fn noop_observer_accepts_every_hook() {
        let mut noop = NoopObserver;
        noop.clock(1);
        noop.scrape_start("u");
        noop.scrape_end(
            "u",
            &ScrapeObservation::Failed {
                cause: "timeout".into(),
                attempts: 3,
                elapsed_ms: 90,
            },
        );
        noop.fetch_attempt("u", 30, false);
        noop.verdict(VerdictKind::Legitimate);
        noop.shed();
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FeatureFamily::F1Url.label(), "f1");
        assert_eq!(FeatureFamily::F5Content.label(), "f5");
        assert_eq!(
            VerdictKind::ConfirmedLegitimate.name(),
            "confirmed_legitimate"
        );
        assert_eq!(VerdictKind::Suspicious.name(), "suspicious");
        assert_eq!(VerdictStage::UrlOnly.name(), "url_only");
        assert_eq!(VerdictStage::Cached.name(), "cached");
        assert_eq!(CascadeOutcome::UrlOnlyFinal.name(), "url_only");
        assert_eq!(CascadeOutcome::Unscorable.name(), "unscorable");
    }
}
