#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Deterministic observability for the *Know Your Phish* workspace.
//!
//! The pipeline's evaluation hinges on per-stage cost accounting (the
//! paper's Table VIII) and on knowing *why* a page was flagged; a
//! production scorer additionally needs per-request telemetry. This crate
//! supplies both without breaking the workspace's determinism contract:
//!
//! - [`MetricsRegistry`] — counters, gauges and fixed-bucket
//!   [`Histogram`]s with **stable registration order**, rendered to a
//!   byte-reproducible `metrics.json`;
//! - [`Tracer`] — a span/event log stamped from caller-provided *virtual*
//!   timestamps (never `Instant`, so the kyp-lint D02 rule stays clean),
//!   rendered as newline-delimited json;
//! - [`PipelineObserver`] — the per-stage hook seam every instrumented
//!   component accepts: scrape start/end, per-attempt fetches, feature
//!   extraction per family, the GBM prediction, target-identification
//!   steps 1–5, and the serving layer's cache/shed/batch events;
//! - [`NoopObserver`] — the zero-cost default: every hook has an empty
//!   default body, so uninstrumented call sites compile to the
//!   uninstrumented code;
//! - [`Recorder`] / [`replay`] — the bridge across the thread pool:
//!   workers record each page's events into a private buffer (a pure
//!   function of the page), and the caller replays the buffers **in input
//!   order** into the real observer, so the emitted metrics and trace are
//!   byte-identical at any thread count;
//! - [`ObsSink`] — the standard observer wiring every hook into a
//!   registry and a tracer.
//!
//! The crate is dependency-free (json is hand-rendered with stable field
//! order) so every workspace layer can depend on it without cycles.
//!
//! # Examples
//!
//! ```
//! use kyp_obs::{MetricsRegistry, PipelineObserver, ObsSink, VerdictKind};
//!
//! let mut sink = ObsSink::new();
//! sink.clock(40);
//! sink.page_start("http://phish.example/login");
//! sink.detector_score(0.93, true);
//! sink.verdict(VerdictKind::Phish);
//! assert_eq!(sink.registry().counter("detector.flagged"), 1);
//! assert_eq!(sink.registry().counter("verdict.phish"), 1);
//! let ndjson = sink.tracer().render_ndjson();
//! assert!(ndjson.lines().count() >= 2);
//! ```

mod json;
mod metrics;
mod observer;
mod sink;
mod trace;

pub use metrics::{Histogram, MetricsRegistry, POW2_BUCKET_BOUNDS};
pub use observer::{
    replay, CascadeOutcome, FeatureFamily, NoopObserver, ObsEvent, PipelineObserver, Recorder,
    ScrapeObservation, TargetStepOutcome, VerdictKind, VerdictStage,
};
pub use sink::ObsSink;
pub use trace::{FieldValue, SpanId, Tracer};
