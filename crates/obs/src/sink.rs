//! [`ObsSink`]: the standard [`PipelineObserver`] that wires every hook
//! into a [`MetricsRegistry`] and a [`Tracer`].
//!
//! All metric names are **pre-registered** in [`ObsSink::new`], so the
//! rendered `metrics.json` has the same layout (and the same bytes for
//! the same workload) regardless of which events actually fired or in
//! what order families of events interleave.

use crate::metrics::{MetricsRegistry, POW2_BUCKET_BOUNDS};
use crate::observer::{
    CascadeOutcome, FeatureFamily, PipelineObserver, ScrapeObservation, TargetStepOutcome,
    VerdictKind, VerdictStage,
};
use crate::trace::{FieldValue, SpanId, Tracer};

/// Scrape failure causes with dedicated counters, by wire name.
const FAILURE_CAUSES: [&str; 7] = [
    "transient",
    "timeout",
    "deadline_exceeded",
    "circuit_open",
    "not_found",
    "bad_url",
    "too_many_redirects",
];

/// Buckets for the serving layer's batch-size histogram.
const BATCH_SIZE_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The standard observer: counters/histograms into a registry, spans and
/// events into a tracer, stamped from the virtual clock forwarded through
/// [`PipelineObserver::clock`].
///
/// # Examples
///
/// ```
/// use kyp_obs::{ObsSink, PipelineObserver, VerdictKind};
///
/// let mut sink = ObsSink::new();
/// sink.clock(12);
/// sink.page_start("http://shop.example/");
/// sink.detector_score(0.1, false);
/// sink.verdict(VerdictKind::Legitimate);
/// assert_eq!(sink.registry().counter("pipeline.pages"), 1);
/// assert_eq!(sink.registry().counter("verdict.legitimate"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ObsSink {
    registry: MetricsRegistry,
    tracer: Tracer,
    now_ms: u64,
    page_span: Option<SpanId>,
    scrape_span: Option<SpanId>,
}

impl Default for ObsSink {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsSink {
    /// A sink with every pipeline metric pre-registered in a fixed order.
    pub fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        registry.register_counter("scrape.started");
        registry.register_counter("scrape.completed");
        registry.register_counter("scrape.degraded");
        registry.register_counter("scrape.failed");
        for cause in FAILURE_CAUSES {
            registry.register_counter(&format!("scrape.failed.{cause}"));
        }
        registry.register_histogram("scrape.elapsed_ms", &POW2_BUCKET_BOUNDS);
        registry.register_counter("fetch.attempts");
        registry.register_counter("fetch.failures");
        registry.register_counter("pipeline.pages");
        registry.register_counter("features.f1");
        registry.register_counter("features.f2");
        registry.register_counter("features.f3");
        registry.register_counter("features.f4");
        registry.register_counter("features.f5");
        registry.register_counter("detector.predictions");
        registry.register_counter("detector.flagged");
        for step in 1..=5u8 {
            registry.register_counter(&format!("target.step{step}.runs"));
        }
        registry.register_counter("target.confirmed_legitimate");
        registry.register_counter("target.candidates");
        registry.register_counter("verdict.legitimate");
        registry.register_counter("verdict.confirmed_legitimate");
        registry.register_counter("verdict.phish");
        registry.register_counter("verdict.suspicious");
        for stage in ["url_only", "full", "cached", "shed"] {
            registry.register_counter(&format!("verdict.stage.{stage}"));
        }
        registry.register_counter("cascade.screened");
        registry.register_counter("cascade.url_only");
        registry.register_counter("cascade.fallthrough");
        registry.register_counter("cascade.unscorable");
        registry.register_counter("serve.cache.hits");
        registry.register_counter("serve.cache.misses");
        registry.register_counter("serve.shed");
        registry.register_counter("serve.batches");
        registry.register_histogram("serve.batch_size", &BATCH_SIZE_BOUNDS);
        Self {
            registry,
            tracer: Tracer::new(),
            now_ms: 0,
            page_span: None,
            scrape_span: None,
        }
    }

    /// The metrics accumulated so far.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutable access, e.g. for components exporting their own gauges.
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// The trace log accumulated so far.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the trace log.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Splits the sink into its registry and tracer.
    pub fn into_parts(self) -> (MetricsRegistry, Tracer) {
        (self.registry, self.tracer)
    }
}

impl PipelineObserver for ObsSink {
    fn clock(&mut self, now_ms: u64) {
        self.now_ms = now_ms;
    }

    fn scrape_start(&mut self, url: &str) {
        self.registry.inc("scrape.started");
        let span = self.tracer.begin_span(
            self.now_ms,
            "scrape",
            &[("url", FieldValue::Str(url.to_owned()))],
        );
        self.scrape_span = Some(span);
    }

    fn scrape_end(&mut self, _url: &str, outcome: &ScrapeObservation) {
        let mut fields: Vec<(&str, FieldValue)> = Vec::new();
        match outcome {
            ScrapeObservation::Fetched {
                attempts,
                elapsed_ms,
                degraded,
            } => {
                self.registry.inc("scrape.completed");
                if *degraded {
                    self.registry.inc("scrape.degraded");
                }
                self.registry.observe("scrape.elapsed_ms", *elapsed_ms);
                fields.push(("ok", FieldValue::Bool(true)));
                fields.push(("attempts", FieldValue::U64(u64::from(*attempts))));
                fields.push(("elapsed_ms", FieldValue::U64(*elapsed_ms)));
                fields.push(("degraded", FieldValue::Bool(*degraded)));
            }
            ScrapeObservation::Failed {
                cause,
                attempts,
                elapsed_ms,
            } => {
                self.registry.inc("scrape.failed");
                let name = format!("scrape.failed.{cause}");
                self.registry.inc(&name);
                self.registry.observe("scrape.elapsed_ms", *elapsed_ms);
                fields.push(("ok", FieldValue::Bool(false)));
                fields.push(("cause", FieldValue::Str(cause.clone())));
                fields.push(("attempts", FieldValue::U64(u64::from(*attempts))));
                fields.push(("elapsed_ms", FieldValue::U64(*elapsed_ms)));
            }
        }
        if let Some(span) = self.scrape_span.take() {
            self.tracer.end_span(self.now_ms, span, &fields);
        } else {
            self.tracer.event(self.now_ms, "scrape_end", &fields);
        }
    }

    fn fetch_attempt(&mut self, url: &str, cost_ms: u64, ok: bool) {
        self.registry.inc("fetch.attempts");
        if !ok {
            self.registry.inc("fetch.failures");
        }
        self.tracer.event(
            self.now_ms,
            "fetch.attempt",
            &[
                ("url", FieldValue::Str(url.to_owned())),
                ("cost_ms", FieldValue::U64(cost_ms)),
                ("ok", FieldValue::Bool(ok)),
            ],
        );
    }

    fn page_start(&mut self, url: &str) {
        self.registry.inc("pipeline.pages");
        let span = self.tracer.begin_span(
            self.now_ms,
            "classify",
            &[("url", FieldValue::Str(url.to_owned()))],
        );
        self.page_span = Some(span);
    }

    fn feature_family(&mut self, family: FeatureFamily, features: usize) {
        self.registry
            .add(&format!("features.{}", family.label()), features as u64);
    }

    fn detector_score(&mut self, score: f64, flagged: bool) {
        self.registry.inc("detector.predictions");
        if flagged {
            self.registry.inc("detector.flagged");
        }
        self.tracer.event(
            self.now_ms,
            "detector.score",
            &[
                ("score", FieldValue::F64(score)),
                ("flagged", FieldValue::Bool(flagged)),
            ],
        );
    }

    fn target_step(&mut self, step: u8, outcome: &TargetStepOutcome) {
        self.registry.inc(&format!("target.step{step}.runs"));
        let outcome_field = match outcome {
            TargetStepOutcome::ConfirmedLegitimate => {
                self.registry.inc("target.confirmed_legitimate");
                FieldValue::Str("confirmed_legitimate".to_owned())
            }
            TargetStepOutcome::Candidates { count } => {
                self.registry.add("target.candidates", *count as u64);
                FieldValue::U64(*count as u64)
            }
            TargetStepOutcome::Continue => FieldValue::Str("continue".to_owned()),
        };
        self.tracer.event(
            self.now_ms,
            "target.step",
            &[
                ("step", FieldValue::U64(u64::from(step))),
                ("outcome", outcome_field),
            ],
        );
    }

    fn verdict(&mut self, kind: VerdictKind) {
        self.registry.inc(&format!("verdict.{}", kind.name()));
        let fields = [("verdict", FieldValue::Str(kind.name().to_owned()))];
        if let Some(span) = self.page_span.take() {
            self.tracer.end_span(self.now_ms, span, &fields);
        } else {
            self.tracer.event(self.now_ms, "verdict", &fields);
        }
    }

    fn cascade_prescreen(&mut self, outcome: CascadeOutcome) {
        self.registry.inc("cascade.screened");
        self.registry.inc(&format!("cascade.{}", outcome.name()));
    }

    fn verdict_stage(&mut self, stage: VerdictStage) {
        self.registry
            .inc(&format!("verdict.stage.{}", stage.name()));
    }

    fn cache_hit(&mut self) {
        self.registry.inc("serve.cache.hits");
    }

    fn cache_miss(&mut self) {
        self.registry.inc("serve.cache.misses");
    }

    fn shed(&mut self) {
        self.registry.inc("serve.shed");
        self.tracer.event(self.now_ms, "serve.shed", &[]);
    }

    fn batch_flush(&mut self, size: usize) {
        self.registry.inc("serve.batches");
        self.registry.observe("serve.batch_size", size as u64);
        self.tracer.event(
            self.now_ms,
            "serve.batch_flush",
            &[("size", FieldValue::U64(size as u64))],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{NoopObserver, Recorder};
    use crate::replay;

    fn drive(obs: &mut dyn PipelineObserver) {
        obs.clock(100);
        obs.scrape_start("http://a/");
        obs.fetch_attempt("http://a/", 40, true);
        obs.scrape_end(
            "http://a/",
            &ScrapeObservation::Fetched {
                attempts: 1,
                elapsed_ms: 40,
                degraded: false,
            },
        );
        obs.page_start("http://a/");
        obs.feature_family(FeatureFamily::F1Url, 14);
        obs.detector_score(0.91, true);
        obs.target_step(1, &TargetStepOutcome::Continue);
        obs.target_step(2, &TargetStepOutcome::Candidates { count: 2 });
        obs.target_step(5, &TargetStepOutcome::Candidates { count: 1 });
        obs.verdict(VerdictKind::Phish);
    }

    #[test]
    fn counts_and_spans_line_up() {
        let mut sink = ObsSink::new();
        drive(&mut sink);
        assert_eq!(sink.registry().counter("scrape.started"), 1);
        assert_eq!(sink.registry().counter("scrape.completed"), 1);
        assert_eq!(sink.registry().counter("fetch.attempts"), 1);
        assert_eq!(sink.registry().counter("pipeline.pages"), 1);
        assert_eq!(sink.registry().counter("features.f1"), 14);
        assert_eq!(sink.registry().counter("detector.flagged"), 1);
        assert_eq!(sink.registry().counter("target.step1.runs"), 1);
        assert_eq!(sink.registry().counter("target.candidates"), 3);
        assert_eq!(sink.registry().counter("verdict.phish"), 1);
        let nd = sink.tracer().render_ndjson();
        assert!(nd.contains("\"span_begin\""));
        assert!(nd.contains("\"name\":\"classify\""));
        assert!(nd.contains("\"verdict\":\"phish\""));
    }

    #[test]
    fn direct_and_replayed_streams_render_identically() {
        let mut direct = ObsSink::new();
        drive(&mut direct);

        let mut rec = Recorder::new();
        drive(&mut rec);
        let mut replayed = ObsSink::new();
        replay(rec.events(), &mut replayed);

        assert_eq!(
            direct.registry().render_json(),
            replayed.registry().render_json()
        );
        assert_eq!(
            direct.tracer().render_ndjson(),
            replayed.tracer().render_ndjson()
        );
    }

    #[test]
    fn metrics_layout_is_fixed_regardless_of_events() {
        let quiet = ObsSink::new();
        let mut busy = ObsSink::new();
        drive(&mut busy);
        let names = |json: &str| -> Vec<String> {
            json.lines()
                .filter(|l| l.trim_start().starts_with("\"name\""))
                .map(ToOwned::to_owned)
                .collect()
        };
        assert_eq!(
            names(&quiet.registry().render_json()),
            names(&busy.registry().render_json())
        );
    }

    #[test]
    fn failure_causes_have_dedicated_counters() {
        let mut sink = ObsSink::new();
        sink.scrape_start("http://b/");
        sink.scrape_end(
            "http://b/",
            &ScrapeObservation::Failed {
                cause: "timeout".into(),
                attempts: 3,
                elapsed_ms: 150,
            },
        );
        assert_eq!(sink.registry().counter("scrape.failed"), 1);
        assert_eq!(sink.registry().counter("scrape.failed.timeout"), 1);
        let _ = NoopObserver;
    }

    #[test]
    fn cascade_and_stage_counters_accumulate() {
        let mut sink = ObsSink::new();
        sink.cascade_prescreen(CascadeOutcome::UrlOnlyFinal);
        sink.cascade_prescreen(CascadeOutcome::Fallthrough);
        sink.cascade_prescreen(CascadeOutcome::Unscorable);
        sink.verdict_stage(VerdictStage::UrlOnly);
        sink.verdict_stage(VerdictStage::Full);
        sink.verdict_stage(VerdictStage::Cached);
        sink.verdict_stage(VerdictStage::Shed);
        assert_eq!(sink.registry().counter("cascade.screened"), 3);
        assert_eq!(sink.registry().counter("cascade.url_only"), 1);
        assert_eq!(sink.registry().counter("cascade.fallthrough"), 1);
        assert_eq!(sink.registry().counter("cascade.unscorable"), 1);
        for stage in ["url_only", "full", "cached", "shed"] {
            assert_eq!(
                sink.registry().counter(&format!("verdict.stage.{stage}")),
                1,
                "{stage}"
            );
        }
    }
}
