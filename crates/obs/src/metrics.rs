//! The metrics registry: counters, gauges and fixed-bucket histograms in
//! **stable registration order**.
//!
//! Determinism rules:
//!
//! - metrics live in a `Vec` in the order they were first registered (or
//!   first touched); the name→slot `HashMap` is only ever used for keyed
//!   lookup, never iterated (kyp-lint D01);
//! - [`MetricsRegistry::render_json`] walks that `Vec`, so two runs that
//!   register and update the same metrics in the same order produce
//!   byte-identical output;
//! - histogram bucket layouts are fixed at registration, so bucket counts
//!   never depend on the data.

use crate::json::push_str_literal;
use std::collections::HashMap;

/// Power-of-two bucket upper bounds (inclusive), 1 ms .. 65536 ms — the
/// default histogram layout, matching the serving layer's latency buckets.
pub const POW2_BUCKET_BOUNDS: [u64; 17] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

/// A fixed-bucket histogram over `u64` observations (virtual milliseconds,
/// batch sizes, attempt counts, ...).
///
/// Percentiles report the upper bound of the bucket holding the requested
/// rank, clamped to the exact maximum observed — an over-estimate that
/// never exceeds the true maximum.
///
/// # Examples
///
/// ```
/// let mut h = kyp_obs::Histogram::pow2();
/// for ms in [1, 2, 3, 9, 120] {
///     h.record(ms);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.percentile(0.50), 4);
/// assert_eq!(h.percentile(0.99), 120);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram over the given strictly increasing bucket upper bounds
    /// (inclusive); observations above the last bound land in an overflow
    /// bucket.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        // kyp-lint: allow(P02) — documented constructor contract; every caller passes static bounds
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        // kyp-lint: allow(P02) — same constructor contract as above
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The default power-of-two layout ([`POW2_BUCKET_BOUNDS`]).
    pub fn pow2() -> Self {
        Self::new(&POW2_BUCKET_BOUNDS)
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        // kyp-lint: allow(P02) — `idx <= bounds.len()` and `counts.len() == bounds.len() + 1`
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The bucket upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// The value at quantile `p` in `(0, 1]`: the upper bound of the
    /// bucket holding the rank-`ceil(p·n)` observation, clamped to the
    /// exact maximum observed. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return self
                    .bounds
                    .get(idx)
                    .copied()
                    .unwrap_or(self.max)
                    .min(self.max);
            }
        }
        self.max
    }

    /// Renders this histogram as a json object fragment (no surrounding
    /// name), with every field in fixed order.
    fn render_into(&self, out: &mut String) {
        out.push_str(&format!(
            "\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, ",
            self.total,
            self.sum,
            self.max,
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99)
        ));
        out.push_str("\"bounds\": [");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&b.to_string());
        }
        out.push_str("], \"counts\": [");
        for (i, c) in self.counts[..self.bounds.len()].iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&c.to_string());
        }
        out.push_str(&format!(
            "], \"overflow\": {}",
            self.counts[self.bounds.len()]
        ));
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Counter(u64),
    Gauge(i64),
    Histogram(Histogram),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named counters, gauges and histograms.
///
/// Metrics are created explicitly (`register_*`) or implicitly on first
/// update; either way the slot order is first-touch order, and
/// [`MetricsRegistry::render_json`] emits slots in exactly that order.
/// Updating a name under the wrong type is a no-op (flagged by a debug
/// assertion), so instrumentation can never panic a release pipeline.
///
/// # Examples
///
/// ```
/// let mut m = kyp_obs::MetricsRegistry::new();
/// m.inc("pages");
/// m.add("pages", 2);
/// m.set_gauge("threads", 4);
/// m.observe("latency_ms", 17);
/// assert_eq!(m.counter("pages"), 3);
/// assert_eq!(m.gauge("threads"), 4);
/// assert!(m.render_json().contains("\"latency_ms\""));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
    index: HashMap<String, usize>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The slot for `name`, created as `default` when absent.
    fn slot(&mut self, name: &str, default: Metric) -> &mut Metric {
        let idx = if let Some(&idx) = self.index.get(name) {
            idx
        } else {
            let idx = self.entries.len();
            self.entries.push((name.to_owned(), default));
            self.index.insert(name.to_owned(), idx);
            idx
        };
        // kyp-lint: allow(P02) — idx is either a live index from the map or `entries.len()` right before the push above
        &mut self.entries[idx].1
    }

    /// Registers a counter at the current tail of the slot order (no-op if
    /// `name` already exists).
    pub fn register_counter(&mut self, name: &str) {
        let _ = self.slot(name, Metric::Counter(0));
    }

    /// Registers a gauge (no-op if `name` already exists).
    pub fn register_gauge(&mut self, name: &str) {
        let _ = self.slot(name, Metric::Gauge(0));
    }

    /// Registers a histogram with the given bucket bounds (no-op if `name`
    /// already exists).
    pub fn register_histogram(&mut self, name: &str, bounds: &[u64]) {
        let _ = self.slot(name, Metric::Histogram(Histogram::new(bounds)));
    }

    /// Increments counter `name` by 1 (registering it on first touch).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name` (registering it on first touch).
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.slot(name, Metric::Counter(0)) {
            Metric::Counter(c) => *c += delta,
            other => debug_assert!(false, "{name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Sets gauge `name` to `value` (registering it on first touch).
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        match self.slot(name, Metric::Gauge(0)) {
            Metric::Gauge(g) => *g = value,
            other => debug_assert!(false, "{name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Records `value` into histogram `name` (registering it with the
    /// default power-of-two buckets on first touch).
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.slot(name, Metric::Histogram(Histogram::pow2())) {
            Metric::Histogram(h) => h.record(value),
            other => debug_assert!(false, "{name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Replaces histogram `name` with an externally accumulated one
    /// (registering the slot on first touch) — how components that keep
    /// their own [`Histogram`] export it.
    pub fn set_histogram(&mut self, name: &str, hist: Histogram) {
        let bounds = hist.bounds().to_vec();
        match self.slot(name, Metric::Histogram(Histogram::new(&bounds))) {
            Metric::Histogram(h) => *h = hist,
            other => debug_assert!(false, "{name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Current value of counter `name` (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.index.get(name).map(|&i| &self.entries[i].1) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of gauge `name` (0 when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.index.get(name).map(|&i| &self.entries[i].1) {
            Some(Metric::Gauge(g)) => *g,
            _ => 0,
        }
    }

    /// The histogram registered as `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.index.get(name).map(|&i| &self.entries[i].1) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Renders every metric, in registration order, as pretty-printed
    /// json. Two registries built by the same event sequence render
    /// byte-identically; a trailing newline makes the file diff-friendly.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"kyp-obs/metrics/v1\",\n  \"metrics\": [");
        for (i, (name, metric)) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    { \"name\": ");
            push_str_literal(&mut out, name);
            out.push_str(&format!(", \"type\": \"{}\", ", metric.type_name()));
            match metric {
                Metric::Counter(c) => out.push_str(&format!("\"value\": {c}")),
                Metric::Gauge(g) => out.push_str(&format!("\"value\": {g}")),
                Metric::Histogram(h) => h.render_into(&mut out),
            }
            out.push_str(" }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::pow2();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert!(h.mean() == 0.0);
    }

    #[test]
    fn percentiles_match_the_serving_layer_semantics() {
        let mut h = Histogram::pow2();
        for ms in 1..=100 {
            h.record(ms);
        }
        assert_eq!(h.percentile(0.50), 64);
        assert_eq!(h.percentile(0.90), 100, "clamped to exact max");
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn overflow_bucket_reports_exact_max() {
        let mut h = Histogram::new(&[1, 2]);
        h.record(1);
        h.record(1_000_000);
        assert_eq!(h.percentile(0.99), 1_000_000);
        assert_eq!(h.percentile(0.50), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[4, 2]);
    }

    #[test]
    fn registry_counts_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 4);
        m.set_gauge("g", -3);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.gauge("g"), -3);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn render_preserves_registration_order() {
        let mut m = MetricsRegistry::new();
        m.register_counter("zebra");
        m.register_counter("aardvark");
        m.inc("zebra");
        let json = m.render_json();
        let z = json.find("zebra").unwrap();
        let a = json.find("aardvark").unwrap();
        assert!(z < a, "registration order, not alphabetical:\n{json}");
    }

    #[test]
    fn render_is_reproducible() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.inc("pages");
            m.observe("lat", 3);
            m.observe("lat", 900_000);
            m.set_gauge("threads", 8);
            m.render_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn histogram_json_has_fixed_fields() {
        let mut m = MetricsRegistry::new();
        m.register_histogram("h", &[1, 2, 4]);
        m.observe("h", 3);
        m.observe("h", 99);
        let json = m.render_json();
        assert!(json.contains("\"count\": 2"), "{json}");
        assert!(json.contains("\"bounds\": [1, 2, 4]"), "{json}");
        assert!(json.contains("\"overflow\": 1"), "{json}");
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn mismatched_kind_updates_are_ignored_in_release() {
        let mut m = MetricsRegistry::new();
        m.register_counter("c");
        // In debug builds these would assert; the release contract is
        // "no-op, keep the registered value".
        if cfg!(not(debug_assertions)) {
            m.set_gauge("c", 7);
            m.observe("c", 7);
            assert_eq!(m.counter("c"), 0);
        }
    }

    #[test]
    fn exported_histogram_replaces_slot() {
        let mut h = Histogram::new(&[10, 20]);
        h.record(15);
        let mut m = MetricsRegistry::new();
        m.set_histogram("lat", h.clone());
        assert_eq!(m.histogram("lat"), Some(&h));
    }
}
