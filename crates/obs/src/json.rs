//! Minimal hand-rolled json rendering shared by the metrics and trace
//! serializers. The crate is dependency-free by design, and hand-rendering
//! keeps field order under our control — the byte-reproducibility the
//! determinism suite asserts.

/// Appends `s` to `out` as a json string literal (quotes included).
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` in Rust's shortest round-trip notation, which is
/// platform-independent; non-finite values render as json `null`.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn floats_render_shortest_roundtrip() {
        let mut out = String::new();
        push_f64(&mut out, 0.85);
        assert_eq!(out, "0.85");
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}
