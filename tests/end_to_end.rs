//! End-to-end integration tests spanning every crate: corpus generation →
//! scraping → feature extraction → training → detection → target
//! identification → combined pipeline.

use knowyourphish::core::{
    DetectorConfig, FeatureExtractor, PhishDetector, Pipeline, PipelineVerdict, TargetIdentifier,
    TargetVerdict,
};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::{metrics, Dataset};
use knowyourphish::web::Browser;
use std::sync::Arc;

fn small_corpus() -> Corpus {
    Corpus::generate(&CampaignConfig {
        seed: 31,
        phish_train: 80,
        phish_test: 80,
        phish_brand: 40,
        leg_train: 300,
        english_test: 300,
        other_language_test: 60,
    })
}

fn featurize(corpus: &Corpus, extractor: &FeatureExtractor) -> (Dataset, Dataset) {
    let browser = Browser::new(&corpus.world);
    let mut train = Dataset::new(knowyourphish::core::features::FEATURE_COUNT);
    for url in &corpus.leg_train {
        train.push_row(&extractor.extract(&browser.visit(url).unwrap()), false);
    }
    for r in &corpus.phish_train {
        train.push_row(&extractor.extract(&browser.visit(&r.url).unwrap()), true);
    }
    let mut test = Dataset::new(knowyourphish::core::features::FEATURE_COUNT);
    for url in corpus.english_test() {
        test.push_row(&extractor.extract(&browser.visit(url).unwrap()), false);
    }
    for r in &corpus.phish_test {
        test.push_row(&extractor.extract(&browser.visit(&r.url).unwrap()), true);
    }
    (train, test)
}

#[test]
fn detector_reaches_paper_grade_auc() {
    let corpus = small_corpus();
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let (train, test) = featurize(&corpus, &extractor);

    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let scores = detector.score_dataset(&test);
    let auc = metrics::auc(&scores, test.labels());
    assert!(auc > 0.96, "AUC {auc}");

    let conf = metrics::Confusion::at_threshold(&scores, test.labels(), 0.7);
    assert!(conf.recall() > 0.85, "recall {}", conf.recall());
    assert!(conf.fpr() < 0.05, "fpr {}", conf.fpr());
}

#[test]
fn target_identifier_finds_most_targets() {
    let corpus = small_corpus();
    let identifier = TargetIdentifier::new(Arc::new(corpus.engine.clone()));
    let browser = Browser::new(&corpus.world);

    let mut correct_top3 = 0usize;
    let mut with_target = 0usize;
    for record in &corpus.phish_brand {
        let Some(target) = &record.target else {
            continue;
        };
        with_target += 1;
        let visit = browser.visit(&record.url).unwrap();
        if identifier.identify(&visit).has_target_in_top(target, 3) {
            correct_top3 += 1;
        }
    }
    assert!(with_target >= 30);
    let rate = correct_top3 as f64 / with_target as f64;
    assert!(
        rate > 0.75,
        "top-3 rate {rate} ({correct_top3}/{with_target})"
    );
}

#[test]
fn legitimate_sites_confirmed_by_search() {
    let corpus = small_corpus();
    let identifier = TargetIdentifier::new(Arc::new(corpus.engine.clone()));
    let browser = Browser::new(&corpus.world);

    let mut legit = 0usize;
    let mut checked = 0usize;
    for url in corpus.english_test().iter().take(60) {
        let visit = browser.visit(url).unwrap();
        checked += 1;
        if matches!(
            identifier.identify(&visit),
            TargetVerdict::Legitimate { .. }
        ) {
            legit += 1;
        }
    }
    assert!(
        legit * 2 > checked,
        "only {legit}/{checked} legitimate pages confirmed"
    );
}

#[test]
fn pipeline_classifies_and_names_targets() {
    let corpus = small_corpus();
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let (train, _) = featurize(&corpus, &extractor);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let identifier = TargetIdentifier::new(Arc::new(corpus.engine.clone()));
    let pipeline = Pipeline::new(extractor, detector, identifier);

    let browser = Browser::new(&corpus.world);
    let mut phish_alarms = 0usize;
    for r in corpus.phish_test.iter().take(40) {
        let verdict = pipeline.classify(&browser.visit(&r.url).unwrap());
        if verdict.is_alarming() {
            phish_alarms += 1;
        }
    }
    assert!(phish_alarms >= 32, "only {phish_alarms}/40 phish alarming");

    let mut legit_alarms = 0usize;
    for url in corpus.english_test().iter().take(60) {
        let verdict = pipeline.classify(&browser.visit(url).unwrap());
        if let PipelineVerdict::Phish { .. } | PipelineVerdict::Suspicious { .. } = verdict {
            legit_alarms += 1;
        }
    }
    assert!(legit_alarms <= 4, "{legit_alarms}/60 legit pages alarmed");
}

#[test]
fn feature_subsets_rank_as_in_table_vii() {
    use knowyourphish::core::FeatureSet;
    use knowyourphish::ml::{GbmParams, GradientBoosting};

    let corpus = small_corpus();
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let (train, test) = featurize(&corpus, &extractor);

    let auc_of = |set: FeatureSet| {
        let cols = set.columns();
        let tr = train.select_features(&cols);
        let te = test.select_features(&cols);
        let model = GradientBoosting::fit(
            &tr,
            &GbmParams {
                n_trees: 60,
                ..Default::default()
            },
        );
        metrics::auc(&model.predict_dataset(&te), te.labels())
    };

    let f1 = auc_of(FeatureSet::F1);
    let f3 = auc_of(FeatureSet::F3);
    let fall = auc_of(FeatureSet::All);
    // The paper's ordering: the full set dominates, f3 alone is weakest.
    assert!(fall >= f1 - 0.01, "fall {fall} vs f1 {f1}");
    assert!(f1 > f3, "f1 {f1} vs f3 {f3}");
    assert!(fall > 0.97, "fall AUC {fall}");
}
