//! The store's determinism contract: `kyp gen --store` must write
//! byte-identical files at any thread count and across repeated runs,
//! and everything later streamed *out* of a store — training matrices,
//! models, scores, verdict streams, serving pages — must be
//! byte-identical to the in-memory pipeline it replaced.

use knowyourphish::core::{
    DetectorConfig, FeatureExtractor, PhishDetector, Pipeline, TargetIdentifier,
};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::Dataset;
use knowyourphish::serve::{PageSource, StoredPages};
use knowyourphish::storeflow;
use knowyourphish::web::ResilientBrowser;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn small_config() -> CampaignConfig {
    CampaignConfig {
        seed: 77,
        phish_train: 30,
        phish_test: 20,
        phish_brand: 8,
        leg_train: 100,
        english_test: 60,
        other_language_test: 10,
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build(dir: &Path, corpus: &Corpus, config: &CampaignConfig) -> storeflow::StoreBuildReport {
    storeflow::build_store(dir, corpus, config, &corpus.world, 0.0, config.seed).unwrap()
}

fn store_bytes(dir: &Path) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(knowyourphish::store::pages_path(dir)).unwrap(),
        std::fs::read(knowyourphish::store::features_path(dir)).unwrap(),
    )
}

/// The written store files are byte-identical at 1, 2 and 8 threads and
/// across repeated runs at the same thread count.
#[test]
fn store_files_are_byte_identical_across_threads_and_runs() {
    let config = small_config();
    let corpus = Corpus::generate(&config);

    let mut baseline: Option<(Vec<u8>, Vec<u8>)> = None;
    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        let dir = fresh_dir(&format!("kyp_store_det_t{threads}"));
        let report = build(&dir, &corpus, &config);
        assert_eq!(report.pages, report.rows, "one feature row per page");
        assert!(report.pages > 0);
        let bytes = store_bytes(&dir);
        match &baseline {
            None => baseline = Some(bytes),
            Some(base) => {
                assert!(
                    base.0 == bytes.0,
                    "pages.kyps diverges at {threads} threads"
                );
                assert!(
                    base.1 == bytes.1,
                    "features.kypf diverges at {threads} threads"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Same thread count, fresh run, fresh corpus generation: still the
    // same bytes (generation itself is seeded).
    knowyourphish::exec::set_threads(2);
    let again = Corpus::generate(&config);
    let dir = fresh_dir("kyp_store_det_rerun");
    build(&dir, &again, &config);
    let bytes = store_bytes(&dir);
    let base = baseline.unwrap();
    assert!(base.0 == bytes.0, "pages.kyps diverges across runs");
    assert!(base.1 == bytes.1, "features.kypf diverges across runs");
    std::fs::remove_dir_all(&dir).unwrap();
    knowyourphish::exec::set_threads(0);
}

/// A model trained from stored feature rows is byte-identical to one
/// trained from freshly scraped + extracted pages, and store-streamed
/// scores are bit-identical to in-memory dataset scoring.
#[test]
fn stored_rows_train_and_score_identically_to_in_memory() {
    let config = small_config();
    let corpus = Corpus::generate(&config);
    let dir = fresh_dir("kyp_store_det_train");
    build(&dir, &corpus, &config);

    // In-memory reference: scrape the same bundles in the same order and
    // featurize legit-then-phish, exactly like `kyp train --data`.
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let mut scraper = ResilientBrowser::new(&corpus.world);
    let mut visits: Vec<(bool, Vec<knowyourphish::web::VisitedPage>)> = Vec::new();
    for (_, urls, is_phish) in corpus.scrape_bundles() {
        let pages: Vec<_> = urls
            .iter()
            .filter_map(|u| scraper.scrape(u).ok().map(|s| s.visit))
            .collect();
        visits.push((is_phish, pages));
    }
    // Bundle order follows generation: 0 phish_train, 1 phish_test,
    // 2 leg_train, 3 leg_test. Training = leg_train then phish_train.
    let mut in_memory = Dataset::new(extractor.feature_count());
    for row in extractor.extract_batch(&visits[2].1) {
        in_memory.push_row(&row, false);
    }
    for row in extractor.extract_batch(&visits[0].1) {
        in_memory.push_row(&row, true);
    }

    let mut baseline: Option<(String, Vec<u64>)> = None;
    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        let from_store = storeflow::load_split_dataset(&dir, "leg_train", "phish_train").unwrap();
        assert_eq!(from_store.labels(), in_memory.labels());

        let stored_model = PhishDetector::train(&from_store, &DetectorConfig::default());
        let memory_model = PhishDetector::train(&in_memory, &DetectorConfig::default());
        let stored_json = serde_json::to_string(&stored_model).unwrap();
        let memory_json = serde_json::to_string(&memory_model).unwrap();
        assert!(
            stored_json == memory_json,
            "store-trained model diverges from in-memory at {threads} threads"
        );

        let (scores, labels) =
            storeflow::score_split_streaming(&dir, &stored_model, "leg_test", "phish_test")
                .unwrap();
        let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(labels.iter().filter(|l| **l).count(), visits[1].1.len());
        match &baseline {
            None => baseline = Some((stored_json, bits)),
            Some((base_model, base_bits)) => {
                assert!(
                    *base_model == stored_json,
                    "model diverges at {threads} threads"
                );
                assert_eq!(*base_bits, bits, "scores diverge at {threads} threads");
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
    knowyourphish::exec::set_threads(0);
}

/// The store-backed verdict stream equals the in-memory classification
/// of the same scraped pages, at every thread count.
#[test]
fn store_verdict_stream_matches_in_memory_classification() {
    let config = small_config();
    let corpus = Corpus::generate(&config);
    let dir = fresh_dir("kyp_store_det_verdicts");
    build(&dir, &corpus, &config);

    knowyourphish::exec::set_threads(1);
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let train = storeflow::load_split_dataset(&dir, "leg_train", "phish_train").unwrap();
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let pipeline = Pipeline::new(
        extractor,
        detector,
        TargetIdentifier::new(Arc::new(corpus.engine.clone())),
    );

    // In-memory reference: classify the live scrape of the same bundles.
    let mut scraper = ResilientBrowser::new(&corpus.world);
    let mut batch = Vec::new();
    for (_, urls, _) in corpus.scrape_bundles() {
        for url in &urls {
            if let Ok(scraped) = scraper.scrape(url) {
                batch.push((url.clone(), scraped));
            }
        }
    }
    let in_memory: Vec<String> = pipeline
        .classify_scraped(&batch)
        .iter()
        .map(storeflow::verdict_line)
        .collect();

    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        let from_store = storeflow::store_verdict_lines(&dir, &pipeline).unwrap();
        assert!(
            in_memory == from_store,
            "store verdict stream diverges from in-memory at {threads} threads"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
    knowyourphish::exec::set_threads(0);
}

/// A serving page source rebuilt from a store answers fetches exactly
/// like one built from the in-memory page list.
#[test]
fn serving_pages_from_store_match_in_memory_source() {
    let config = small_config();
    let corpus = Corpus::generate(&config);
    let dir = fresh_dir("kyp_store_det_serve");
    build(&dir, &corpus, &config);

    let mut scraper = ResilientBrowser::new(&corpus.world);
    let mut pages = Vec::new();
    let mut urls = Vec::new();
    for (_, bundle_urls, _) in corpus.scrape_bundles() {
        for url in &bundle_urls {
            if let Ok(scraped) = scraper.scrape(url) {
                pages.push(scraped.visit);
                urls.push(url.clone());
            }
        }
    }
    let mut in_memory = StoredPages::new(pages);
    let mut via_trait = StoredPages::from_store_dir(&dir).unwrap();
    let (mut via_flow, flow_urls) = storeflow::load_serving_pages(&dir).unwrap();
    assert_eq!(urls, flow_urls, "request pool order diverges");
    assert_eq!(in_memory.len(), via_trait.len());
    assert_eq!(in_memory.len(), via_flow.len());
    for url in &urls {
        let a = in_memory.fetch(url).unwrap();
        let b = via_trait.fetch(url).unwrap();
        let c = via_flow.fetch(url).unwrap();
        let reference = serde_json::to_string(&a.visit).unwrap();
        assert_eq!(reference, serde_json::to_string(&b.visit).unwrap());
        assert_eq!(reference, serde_json::to_string(&c.visit).unwrap());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
