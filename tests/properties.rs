//! Property-based tests on the core data structures and invariants,
//! spanning `kyp-url`, `kyp-text`, `kyp-ml` and `kyp-core`.

use knowyourphish::core::FeatureExtractor;
use knowyourphish::ml::metrics;
use knowyourphish::text::{extract_terms, TermDistribution};
use knowyourphish::url::Url;
use knowyourphish::web::VisitedPage;
use proptest::prelude::*;

/// Strategy for plausible host names.
fn host_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z][a-z0-9-]{0,10}[a-z0-9]", 1..4)
        .prop_map(|labels| format!("{}.com", labels.join(".")))
}

/// Strategy for URL strings (valid by construction).
fn url_strategy() -> impl Strategy<Value = String> {
    (
        prop_oneof![Just("http"), Just("https")],
        host_strategy(),
        "[a-z0-9/._-]{0,30}",
    )
        .prop_map(|(scheme, host, path)| format!("{scheme}://{host}/{path}"))
}

proptest! {
    #[test]
    fn url_decomposition_invariants(s in url_strategy()) {
        let url = Url::parse(&s).unwrap();
        // The RDN is a suffix of the FQDN.
        let fqdn = url.fqdn_str().unwrap();
        let rdn = url.rdn().unwrap();
        let dotted = format!(".{rdn}");
        prop_assert!(fqdn == rdn || fqdn.ends_with(&dotted));
        // The mld is the first label of the RDN.
        if let Some(mld) = url.mld() {
            prop_assert!(rdn.starts_with(mld));
        }
        // FreeURL parts never contain the RDN separator structure.
        let free = url.free_url();
        prop_assert!(!free.subdomains.ends_with('.'));
        // Display preserves the input.
        prop_assert_eq!(url.as_str(), s.as_str());
    }

    #[test]
    fn term_extraction_canonical(input in ".{0,200}") {
        for term in extract_terms(&input) {
            prop_assert!(term.len() >= 3);
            prop_assert!(term.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn term_extraction_idempotent(input in ".{0,120}") {
        let once = extract_terms(&input);
        let rejoined = once.join(" ");
        let twice = extract_terms(&rejoined);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn hellinger_is_a_bounded_symmetric_metric(
        a in proptest::collection::vec("[a-z]{3,8}", 1..20),
        b in proptest::collection::vec("[a-z]{3,8}", 1..20),
    ) {
        let da = TermDistribution::from_terms(a);
        let db = TermDistribution::from_terms(b);
        let ab = da.hellinger_squared(&db).unwrap();
        let ba = db.hellinger_squared(&da).unwrap();
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-9);
        // Identity of indiscernibles (one direction).
        prop_assert_eq!(da.hellinger_squared(&da), Some(0.0));
    }

    #[test]
    fn auc_is_invariant_to_monotone_transform(
        scores in proptest::collection::vec(0.0f64..1.0, 4..40),
        labels in proptest::collection::vec(any::<bool>(), 4..40),
    ) {
        let n = scores.len().min(labels.len());
        let scores = &scores[..n];
        let labels = &labels[..n];
        let auc1 = metrics::auc(scores, labels);
        let transformed: Vec<f64> = scores.iter().map(|s| s * s * 0.5 + 0.1).collect();
        let auc2 = metrics::auc(&transformed, labels);
        prop_assert!((auc1 - auc2).abs() < 1e-9, "{auc1} vs {auc2}");
        prop_assert!((0.0..=1.0).contains(&auc1));
    }

    #[test]
    fn feature_vector_always_complete_and_finite(
        start in url_strategy(),
        land in url_strategy(),
        text in ".{0,200}",
        title in ".{0,60}",
        links in proptest::collection::vec(url_strategy(), 0..6),
        inputs in 0usize..10,
    ) {
        let page = VisitedPage {
            starting_url: Url::parse(&start).unwrap(),
            landing_url: Url::parse(&land).unwrap(),
            redirection_chain: vec![
                Url::parse(&start).unwrap(),
                Url::parse(&land).unwrap(),
            ],
            logged_links: links.iter().map(|l| Url::parse(l).unwrap()).collect(),
            href_links: links.iter().map(|l| Url::parse(l).unwrap()).collect(),
            text,
            title,
            copyright: None,
            screenshot_text: String::new(),
            input_count: inputs,
            image_count: inputs / 2,
            iframe_count: 0,
        };
        let features = FeatureExtractor::default().extract(&page);
        prop_assert_eq!(features.len(), knowyourphish::core::features::FEATURE_COUNT);
        for (i, v) in features.iter().enumerate() {
            prop_assert!(v.is_finite(), "feature {i} = {v}");
        }
    }

    #[test]
    fn html_parser_never_panics(html in ".{0,400}") {
        let doc = knowyourphish::html::Document::parse(&html);
        // Counts are consistent with extracted links.
        let _ = doc.text();
        let _ = doc.title();
        prop_assert!(doc.href_links().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn ocr_output_is_subset_of_charset(text in "[a-zA-Z0-9 ]{0,120}") {
        let cfg = knowyourphish::web::ocr::OcrConfig::default();
        let out = knowyourphish::web::ocr::simulate_ocr(&text, &cfg);
        // OCR never invents whitespace runs and never grows words count.
        prop_assert!(out.split_whitespace().count() <= text.split_whitespace().count());
    }
}
