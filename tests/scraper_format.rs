//! The paper's scraper "saves the data in json format" (Section VI-A);
//! these tests pin the interchange format of the scraped bundle so
//! offline analysis pipelines can rely on it.

use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::web::{Browser, VisitedPage};

#[test]
fn visited_page_json_roundtrip_over_corpus() {
    let corpus = Corpus::generate(&CampaignConfig::tiny());
    let browser = Browser::new(&corpus.world);
    for record in corpus.phish_test.iter().take(10) {
        let visit = browser.visit(&record.url).unwrap();
        let json = serde_json::to_string(&visit).unwrap();
        let back: VisitedPage = serde_json::from_str(&json).unwrap();
        assert_eq!(visit, back);
    }
    for url in corpus.english_test().iter().take(10) {
        let visit = browser.visit(url).unwrap();
        let json = serde_json::to_string_pretty(&visit).unwrap();
        let back: VisitedPage = serde_json::from_str(&json).unwrap();
        assert_eq!(visit, back);
    }
}

#[test]
fn json_has_stable_field_names() {
    let corpus = Corpus::generate(&CampaignConfig::tiny());
    let browser = Browser::new(&corpus.world);
    let visit = browser.visit(&corpus.phish_test[0].url).unwrap();
    let value: serde_json::Value = serde_json::to_value(&visit).unwrap();
    for field in [
        "starting_url",
        "landing_url",
        "redirection_chain",
        "logged_links",
        "href_links",
        "text",
        "title",
        "copyright",
        "screenshot_text",
        "input_count",
        "image_count",
        "iframe_count",
    ] {
        assert!(value.get(field).is_some(), "missing field {field}");
    }
}

#[test]
fn features_are_deterministic_across_serde() {
    use knowyourphish::core::FeatureExtractor;
    let corpus = Corpus::generate(&CampaignConfig::tiny());
    let browser = Browser::new(&corpus.world);
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let visit = browser.visit(&corpus.phish_test[1].url).unwrap();
    let direct = extractor.extract(&visit);
    let reloaded: VisitedPage =
        serde_json::from_str(&serde_json::to_string(&visit).unwrap()).unwrap();
    let via_json = extractor.extract(&reloaded);
    assert_eq!(direct, via_json);
}
