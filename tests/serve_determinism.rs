//! The serving layer's determinism contract, end to end.
//!
//! `kyp-serve` promises that the verdict stream — the
//! `ServeResponse::verdict_line` projection of every response, in
//! completion order — is byte-identical across thread counts, across
//! cache-on/cache-off runs of the same trace, and under a seeded fault
//! plan. These tests drive a real trained pipeline over the simulated
//! web through `ScoringService` and byte-compare the streams, the same
//! way `tests/determinism.rs` pins down the batch classification paths.
//!
//! The model-snapshot round trip is covered here too: a service scoring
//! with a detector that went through `train → save → load` must emit
//! the same bytes as one scoring with the original in-memory detector.

use knowyourphish::core::{
    DetectorConfig, FeatureExtractor, ModelSnapshot, PhishDetector, Pipeline, TargetIdentifier,
};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::Dataset;
use knowyourphish::serve::{
    generate, ArrivalPattern, BatchPolicy, CacheConfig, ScoringService, ScraperSource, ServeConfig,
    ServeRequest, ServeResponse, WorkloadConfig,
};
use knowyourphish::web::{FaultPlan, FlakyWorld, ResilientBrowser};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn small_corpus() -> Corpus {
    Corpus::generate(&CampaignConfig {
        seed: 91,
        phish_train: 40,
        phish_test: 30,
        phish_brand: 8,
        leg_train: 160,
        english_test: 80,
        other_language_test: 10,
    })
}

fn train_detector(corpus: &Corpus, extractor: &FeatureExtractor) -> PhishDetector {
    let browser = knowyourphish::web::Browser::new(&corpus.world);
    let mut data = Dataset::new(extractor.feature_count());
    for url in &corpus.leg_train {
        data.push_row(&extractor.extract(&browser.visit(url).unwrap()), false);
    }
    for r in &corpus.phish_train {
        data.push_row(&extractor.extract(&browser.visit(&r.url).unwrap()), true);
    }
    PhishDetector::train(&data, &DetectorConfig::default())
}

fn pipeline_for(corpus: &Corpus) -> Pipeline {
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    knowyourphish::exec::set_threads(1);
    let detector = train_detector(corpus, &extractor);
    Pipeline::new(
        extractor,
        detector,
        TargetIdentifier::new(Arc::new(corpus.engine.clone())),
    )
}

/// A seeded 30%-duplicate trace over the corpus's test URLs, with two
/// unfetchable URLs mixed into the pool so failure responses are part of
/// the compared stream.
fn serving_trace(corpus: &Corpus) -> Vec<ServeRequest> {
    let mut pool: Vec<String> = corpus.phish_test.iter().map(|r| r.url.clone()).collect();
    pool.extend(corpus.english_test().iter().take(40).cloned());
    pool.push("http://nowhere.invalid/".into());
    pool.push("not a url".into());
    generate(
        &WorkloadConfig {
            seed: 404,
            requests: 300,
            duplicate_rate: 0.3,
            arrival: ArrivalPattern::Bursty {
                burst: 12,
                burst_gap_ms: 1,
                idle_gap_ms: 30,
            },
            fault_seed: 0,
            fault_rate: 0.0,
        },
        &pool,
    )
}

fn serve_config(cache_on: bool) -> ServeConfig {
    ServeConfig {
        queue_capacity: 16, // small enough that the bursts shed
        batch: BatchPolicy {
            max_batch: 8,
            max_delay_ms: 25,
        },
        cache: cache_on.then(CacheConfig::default),
        ..ServeConfig::default()
    }
}

fn verdict_lines<S: knowyourphish::serve::PageSource>(
    mut service: ScoringService<S>,
    trace: &[ServeRequest],
) -> Vec<String> {
    service
        .run_trace(trace)
        .iter()
        .map(ServeResponse::verdict_line)
        .collect()
}

/// One trace, six runs — 1/2/8 threads × cache on/off — over a clean
/// simulated web: every verdict stream must be byte-identical.
#[test]
fn serve_stream_is_invariant_across_threads_and_cache() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let trace = serving_trace(&corpus);

    let mut baseline: Option<Vec<String>> = None;
    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        for cache_on in [false, true] {
            let source = ScraperSource::new(&corpus.world);
            let service = ScoringService::new(pipeline.clone(), source, serve_config(cache_on));
            let lines = verdict_lines(service, &trace);
            assert_eq!(lines.len(), trace.len(), "every request must be answered");
            match &baseline {
                None => baseline = Some(lines),
                Some(base) => assert_eq!(
                    *base, lines,
                    "verdict stream diverges at {threads} threads, cache={cache_on}"
                ),
            }
        }
    }
    knowyourphish::exec::set_threads(0);
}

/// The same sweep under a seeded fault plan: retries, transient failures
/// and circuit-breaker state make the page source stateful, but because
/// the service fetches each unique URL exactly once, the fault sequence —
/// and so the verdict stream — is identical in every configuration.
#[test]
fn serve_stream_is_invariant_under_faults() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let trace = serving_trace(&corpus);

    let mut baseline: Option<Vec<String>> = None;
    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        for cache_on in [false, true] {
            let flaky = FlakyWorld::new(&corpus.world, FaultPlan::new(5, 0.3));
            let source = ScraperSource::with_browser(ResilientBrowser::new(&flaky));
            let service = ScoringService::new(pipeline.clone(), source, serve_config(cache_on));
            let lines = verdict_lines(service, &trace);
            match &baseline {
                None => baseline = Some(lines),
                Some(base) => assert_eq!(
                    *base, lines,
                    "faulty-web verdict stream diverges at {threads} threads, cache={cache_on}"
                ),
            }
        }
    }
    let faulty = baseline.expect("sweep ran");
    // The fault plan must actually bite — otherwise this test collapses
    // into the clean-web one.
    assert!(
        faulty.iter().any(|l| l.contains("Unfetchable")),
        "a 0.3 fault rate should leave some URLs unfetchable"
    );
    knowyourphish::exec::set_threads(0);
}

/// `train → save → load` must be lossless for serving: a service scoring
/// with the reloaded snapshot emits byte-for-byte the stream of one
/// scoring with the original in-memory model.
#[test]
fn snapshot_round_trip_preserves_the_serving_stream() {
    let corpus = small_corpus();
    knowyourphish::exec::set_threads(1);
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let detector = train_detector(&corpus, &extractor);
    let trace = serving_trace(&corpus);

    let snapshot = ModelSnapshot::new(detector, corpus.ranker.clone());
    let dir = std::env::temp_dir().join("kyp_serve_determinism_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    snapshot.save(&path).unwrap();
    let loaded = ModelSnapshot::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        loaded.format_version,
        knowyourphish::core::MODEL_SNAPSHOT_VERSION
    );

    let streams: Vec<Vec<String>> = [snapshot, loaded]
        .into_iter()
        .map(|snap| {
            let pipeline = Pipeline::new(
                FeatureExtractor::new(snap.ranker.clone()),
                snap.detector,
                TargetIdentifier::new(Arc::new(corpus.engine.clone())),
            );
            let source = ScraperSource::new(&corpus.world);
            verdict_lines(
                ScoringService::new(pipeline, source, serve_config(true)),
                &trace,
            )
        })
        .collect();
    assert_eq!(
        streams[0], streams[1],
        "reloaded snapshot must serve the same bytes as the in-memory model"
    );
    knowyourphish::exec::set_threads(0);
}
