//! Corruption robustness over *real* store files written by the real
//! generation pipeline: every bit-flip and truncation must surface as a
//! typed [`StoreError`] (or, for truncation exactly on a block
//! boundary, a silently shorter read — torn tail writes are
//! indistinguishable from a shorter run by design). Nothing panics.

use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::store::{
    features_path, pages_path, FeatureStoreReader, PageStoreReader, StoreError,
    STORE_FORMAT_VERSION,
};
use knowyourphish::storeflow;
use std::path::{Path, PathBuf};

fn tiny_config() -> CampaignConfig {
    CampaignConfig {
        seed: 41,
        phish_train: 10,
        phish_test: 6,
        phish_brand: 5,
        leg_train: 30,
        english_test: 20,
        other_language_test: 5,
    }
}

/// Builds a real store under a fresh temp dir and returns it.
fn real_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    let config = tiny_config();
    let corpus = Corpus::generate(&config);
    storeflow::build_store(&dir, &corpus, &config, &corpus.world, 0.0, config.seed).unwrap();
    dir
}

fn read_all_pages(path: &Path) -> Result<Vec<knowyourphish::web::VisitedPage>, StoreError> {
    PageStoreReader::open(path)?.read_all()
}

fn drain_features(path: &Path) -> Result<usize, StoreError> {
    let mut reader = FeatureStoreReader::open(path)?;
    let mut rows = 0;
    while let Some(block) = reader.next_block()? {
        rows += block.labels.len();
    }
    Ok(rows)
}

#[test]
fn bad_magic_is_a_typed_error() {
    let dir = real_store("kyp_store_corrupt_magic");
    let path = pages_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    match read_all_pages(&path) {
        Err(StoreError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn future_format_version_is_refused() {
    let dir = real_store("kyp_store_corrupt_version");
    let path = features_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&(STORE_FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match drain_features(&path) {
        Err(StoreError::VersionMismatch { found, expected }) => {
            assert_eq!(found, STORE_FORMAT_VERSION + 1);
            assert_eq!(expected, STORE_FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn opening_a_features_file_as_pages_is_a_kind_mismatch() {
    let dir = real_store("kyp_store_corrupt_kind");
    match read_all_pages(&features_path(&dir)) {
        Err(StoreError::KindMismatch { .. }) => {}
        other => panic!("expected KindMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Flipping any single byte of either file is detected: the header is
/// checksummed, every block payload is checksummed, and the framing
/// fields are validated during decode. Sweep flips across the whole
/// file at regular intervals.
#[test]
fn every_sampled_bit_flip_is_detected() {
    let dir = real_store("kyp_store_corrupt_flip");
    for (path, is_pages) in [(pages_path(&dir), true), (features_path(&dir), false)] {
        let original = std::fs::read(&path).unwrap();
        let len = original.len();
        let mut positions: Vec<usize> = (0..40).map(|i| i * len / 40).collect();
        positions.push(len - 1);
        positions.dedup();
        for pos in positions {
            let mut bytes = original.clone();
            bytes[pos] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
            let outcome = if is_pages {
                read_all_pages(&path).map(|pages| pages.len())
            } else {
                drain_features(&path)
            };
            assert!(
                outcome.is_err(),
                "bit flip at byte {pos}/{len} of {} went undetected",
                path.display()
            );
        }
        std::fs::write(&path, &original).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Truncating the file anywhere is either a typed error or — exactly on
/// a block boundary — a clean, shorter read. Never a panic, never a
/// full-length result.
#[test]
fn every_sampled_truncation_is_detected_or_cleanly_shorter() {
    let dir = real_store("kyp_store_corrupt_trunc");
    let path = pages_path(&dir);
    let original = std::fs::read(&path).unwrap();
    let full = read_all_pages(&path).unwrap().len();
    let len = original.len();
    let mut cuts: Vec<usize> = (1..30).map(|i| i * len / 30).collect();
    cuts.extend([4, 11, len - 9, len - 1]);
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts {
        std::fs::write(&path, &original[..cut]).unwrap();
        match read_all_pages(&path) {
            Err(_) => {}
            Ok(pages) => assert!(
                pages.len() < full,
                "truncation to {cut}/{len} bytes still read all {full} pages"
            ),
        }
    }
    // Cutting inside the tail checksum is specifically Truncated.
    std::fs::write(&path, &original[..len - 3]).unwrap();
    match read_all_pages(&path) {
        Err(StoreError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    std::fs::write(&path, &original).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `store inspect` reports post-header damage instead of erroring out,
/// and flags the directory as not clean.
#[test]
fn inspect_surfaces_damage_without_failing() {
    let dir = real_store("kyp_store_corrupt_inspect");
    let clean = knowyourphish::store::inspect_dir(&dir).unwrap();
    assert!(clean.is_clean());
    assert!(clean.render().contains("status: clean"));

    let path = features_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let damaged = knowyourphish::store::inspect_dir(&dir).unwrap();
    assert!(!damaged.is_clean());
    assert!(
        damaged.features.damage.is_some(),
        "inspection must capture the damaged block"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
