//! The cluster layer's determinism contract, end to end.
//!
//! `kyp-cluster` promises that the id-sorted verdict stream
//! (`kyp_cluster::verdict_stream`) is byte-identical across shard counts,
//! replica fan-outs, ring placements, thread counts and crash schedules.
//! These tests drive a real trained pipeline over the simulated web
//! through `ClusterService` and byte-compare the streams, the same way
//! `tests/serve_determinism.rs` pins down the single-node service.
//!
//! The matrix is the acceptance gate from the issue: shards ∈ {1, 2, 4}
//! × replicas ∈ {1, 2} × threads ∈ {1, 2, 8} × crashes on/off — 36 runs,
//! one stream.

use knowyourphish::cluster::{verdict_stream, ClusterConfig, ClusterService, CrashPlan};
use knowyourphish::core::{
    DetectorConfig, FeatureExtractor, PhishDetector, Pipeline, TargetIdentifier,
};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::Dataset;
use knowyourphish::serve::{
    generate, ArrivalPattern, BatchPolicy, CacheConfig, PageSource, ScraperSource, ServeConfig,
    ServeRequest, WorkloadConfig,
};
use knowyourphish::web::{FaultPlan, FlakyWorld, ResilientBrowser};
use std::sync::Arc;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const REPLICA_COUNTS: [usize; 2] = [1, 2];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn small_corpus() -> Corpus {
    Corpus::generate(&CampaignConfig {
        seed: 91,
        phish_train: 40,
        phish_test: 30,
        phish_brand: 8,
        leg_train: 160,
        english_test: 80,
        other_language_test: 10,
    })
}

fn pipeline_for(corpus: &Corpus) -> Pipeline {
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    knowyourphish::exec::set_threads(1);
    let browser = knowyourphish::web::Browser::new(&corpus.world);
    let mut data = Dataset::new(extractor.feature_count());
    for url in &corpus.leg_train {
        data.push_row(&extractor.extract(&browser.visit(url).unwrap()), false);
    }
    for r in &corpus.phish_train {
        data.push_row(&extractor.extract(&browser.visit(&r.url).unwrap()), true);
    }
    let detector = PhishDetector::train(&data, &DetectorConfig::default());
    Pipeline::new(
        extractor,
        detector,
        TargetIdentifier::new(Arc::new(corpus.engine.clone())),
    )
}

/// A seeded 50%-duplicate bursty trace over the corpus's test URLs, with
/// two unfetchable URLs mixed into the pool so failure responses are part
/// of the compared stream. The duplicate rate is high enough that some
/// landing URLs cross the hot threshold and exercise replica fan-out.
fn cluster_trace(corpus: &Corpus) -> Vec<ServeRequest> {
    let mut pool: Vec<String> = corpus.phish_test.iter().map(|r| r.url.clone()).collect();
    pool.extend(corpus.english_test().iter().take(40).cloned());
    pool.push("http://nowhere.invalid/".into());
    pool.push("not a url".into());
    generate(
        &WorkloadConfig {
            seed: 404,
            requests: 200,
            duplicate_rate: 0.5,
            arrival: ArrivalPattern::Bursty {
                burst: 12,
                burst_gap_ms: 1,
                idle_gap_ms: 30,
            },
            fault_seed: 0,
            fault_rate: 0.0,
        },
        &pool,
    )
}

/// Every first incarnation crashes inside the trace span, so crash-on
/// runs always exercise detection and failover.
fn crash_plan() -> CrashPlan {
    let mut plan = CrashPlan::new(11, 1.0);
    plan.min_uptime_ms = 200;
    plan.max_uptime_ms = 800;
    plan.downtime_ms = 500;
    plan
}

fn cluster_config(shards: usize, replicas: usize, crash: bool) -> ClusterConfig {
    ClusterConfig {
        shards,
        replicas,
        node: ServeConfig {
            // Tight enough that bursts overflow a single node's queue and
            // exercise route-around/parking.
            queue_capacity: 4,
            batch: BatchPolicy {
                max_batch: 4,
                max_delay_ms: 25,
            },
            cache: Some(CacheConfig::default()),
            ..ServeConfig::default()
        },
        crash: crash.then(crash_plan),
        ..ClusterConfig::default()
    }
}

fn run<S: PageSource>(
    pipeline: &Pipeline,
    source: S,
    config: ClusterConfig,
    trace: &[ServeRequest],
) -> (Vec<String>, knowyourphish::cluster::ClusterReport) {
    let mut cluster = ClusterService::new(pipeline.clone(), source, config);
    let responses = cluster.run_trace(trace);
    (verdict_stream(&responses), cluster.report())
}

/// One trace, thirty-six runs — shards × replicas × threads × crash
/// on/off — over a clean simulated web: every id-sorted verdict stream
/// must be byte-identical, and no run may shed (which would make the
/// invariance vacuous).
#[test]
fn cluster_stream_is_invariant_across_shards_replicas_threads_and_crashes() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let trace = cluster_trace(&corpus);

    let mut baseline: Option<Vec<String>> = None;
    let mut hot_fanout_seen = false;
    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        for shards in SHARD_COUNTS {
            for replicas in REPLICA_COUNTS {
                for crash in [false, true] {
                    let source = ScraperSource::new(&corpus.world);
                    let (lines, report) = run(
                        &pipeline,
                        source,
                        cluster_config(shards, replicas, crash),
                        &trace,
                    );
                    let shape = format!(
                        "shards={shards} replicas={replicas} threads={threads} crash={crash}"
                    );
                    assert_eq!(
                        lines.len(),
                        trace.len(),
                        "every request must be answered ({shape})"
                    );
                    assert_eq!(
                        report.shed_by.retries_exhausted, 0,
                        "the retry budget must absorb this crash schedule ({shape})"
                    );
                    if crash {
                        assert!(
                            report.failover.crashes > 0,
                            "a rate-1.0 crash plan must actually crash nodes ({shape})"
                        );
                    } else {
                        assert_eq!(report.failover.crashes, 0, "{shape}");
                    }
                    if shards == 1 && !crash {
                        assert!(
                            report.routing.parked > 0,
                            "bursts must overflow a single node's queue ({shape})"
                        );
                    }
                    hot_fanout_seen |= report.routing.hot_fanout > 0;
                    match &baseline {
                        None => baseline = Some(lines),
                        Some(base) => {
                            assert_eq!(*base, lines, "verdict stream diverges at {shape}");
                        }
                    }
                }
            }
        }
    }
    assert!(
        hot_fanout_seen,
        "a 50%-duplicate trace must push some landing URL over the hot threshold"
    );
    knowyourphish::exec::set_threads(0);
}

/// The ring placement seed moves every key to a different node set; the
/// verdict stream must not move with it.
#[test]
fn cluster_stream_is_invariant_across_placements() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let trace = cluster_trace(&corpus);
    knowyourphish::exec::set_threads(2);

    let mut baseline: Option<Vec<String>> = None;
    for placement_seed in [1, 7, 99] {
        let config = ClusterConfig {
            placement_seed,
            ..cluster_config(4, 2, true)
        };
        let source = ScraperSource::new(&corpus.world);
        let (lines, _) = run(&pipeline, source, config, &trace);
        match &baseline {
            None => baseline = Some(lines),
            Some(base) => assert_eq!(
                *base, lines,
                "verdict stream diverges at placement seed {placement_seed}"
            ),
        }
    }
    knowyourphish::exec::set_threads(0);
}

/// The same invariance over a *faulty* web: the fault plan makes the page
/// source stateful, but the router fetches every unique URL exactly once
/// in trace order, so the fault sequence — and the stream — is identical
/// whatever the cluster shape.
#[test]
fn cluster_stream_is_invariant_under_fetch_faults() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let trace = cluster_trace(&corpus);

    let mut baseline: Option<Vec<String>> = None;
    for threads in [1, 8] {
        knowyourphish::exec::set_threads(threads);
        for shards in [1, 4] {
            let flaky = FlakyWorld::new(&corpus.world, FaultPlan::new(5, 0.3));
            let source = ScraperSource::with_browser(ResilientBrowser::new(&flaky));
            let (lines, _) = run(&pipeline, source, cluster_config(shards, 2, true), &trace);
            match &baseline {
                None => baseline = Some(lines),
                Some(base) => assert_eq!(
                    *base, lines,
                    "faulty-web stream diverges at {shards} shards, {threads} threads"
                ),
            }
        }
    }
    let faulty = baseline.expect("sweep ran");
    assert!(
        faulty.iter().any(|l| l.contains("Unfetchable")),
        "a 0.3 fault rate should leave some URLs unfetchable"
    );
    knowyourphish::exec::set_threads(0);
}

/// The exported `cluster.*` metrics are as deterministic as the verdicts:
/// the rendered registry is byte-identical across thread counts.
#[test]
fn cluster_metrics_render_identically_across_thread_counts() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let trace = cluster_trace(&corpus);

    let renders: Vec<String> = [1, 8]
        .into_iter()
        .map(|threads| {
            knowyourphish::exec::set_threads(threads);
            let source = ScraperSource::new(&corpus.world);
            let mut cluster =
                ClusterService::new(pipeline.clone(), source, cluster_config(2, 2, true));
            cluster.run_trace(&trace);
            let mut registry = knowyourphish::obs::MetricsRegistry::new();
            cluster.export_metrics(&mut registry);
            registry.render_json()
        })
        .collect();
    assert_eq!(
        renders[0], renders[1],
        "cluster metrics must not depend on the thread count"
    );
    knowyourphish::exec::set_threads(0);
}
