//! The observability layer's determinism contract, end to end.
//!
//! `kyp-obs` promises that the rendered metrics registry json and the
//! NDJSON span trace are *byte-identical* across thread counts — the
//! observed stream is part of the repo-wide determinism contract, not a
//! best-effort diagnostic. These tests drive a real trained pipeline
//! through the online scoring service and the batch classification path
//! at 1/2/8 threads, with the verdict cache on and off, over a clean and
//! a seeded-fault simulated web, and byte-compare the rendered outputs —
//! mirroring the verdict-stream sweeps of `tests/serve_determinism.rs`.
//!
//! Cache-on and cache-off are *separate* scenarios (a disabled cache
//! emits no hit/miss events at all), each of which must be internally
//! invariant across thread counts.

use knowyourphish::core::{
    DetectorConfig, FeatureExtractor, PhishDetector, Pipeline, TargetIdentifier,
};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::Dataset;
use knowyourphish::obs::ObsSink;
use knowyourphish::serve::{
    generate, ArrivalPattern, BatchPolicy, CacheConfig, ScoringService, ScraperSource, ServeConfig,
    ServeRequest, WorkloadConfig,
};
use knowyourphish::web::{FaultPlan, FlakyWorld, ResilientBrowser};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn small_corpus() -> Corpus {
    Corpus::generate(&CampaignConfig {
        seed: 91,
        phish_train: 40,
        phish_test: 30,
        phish_brand: 8,
        leg_train: 160,
        english_test: 80,
        other_language_test: 10,
    })
}

fn train_detector(corpus: &Corpus, extractor: &FeatureExtractor) -> PhishDetector {
    let browser = knowyourphish::web::Browser::new(&corpus.world);
    let mut data = Dataset::new(extractor.feature_count());
    for url in &corpus.leg_train {
        data.push_row(&extractor.extract(&browser.visit(url).unwrap()), false);
    }
    for r in &corpus.phish_train {
        data.push_row(&extractor.extract(&browser.visit(&r.url).unwrap()), true);
    }
    PhishDetector::train(&data, &DetectorConfig::default())
}

fn pipeline_for(corpus: &Corpus) -> Pipeline {
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    knowyourphish::exec::set_threads(1);
    let detector = train_detector(corpus, &extractor);
    Pipeline::new(
        extractor,
        detector,
        TargetIdentifier::new(Arc::new(corpus.engine.clone())),
    )
}

fn serving_trace(corpus: &Corpus) -> Vec<ServeRequest> {
    let mut pool: Vec<String> = corpus.phish_test.iter().map(|r| r.url.clone()).collect();
    pool.extend(corpus.english_test().iter().take(40).cloned());
    pool.push("http://nowhere.invalid/".into());
    pool.push("not a url".into());
    generate(
        &WorkloadConfig {
            seed: 404,
            requests: 300,
            duplicate_rate: 0.3,
            arrival: ArrivalPattern::Bursty {
                burst: 12,
                burst_gap_ms: 1,
                idle_gap_ms: 30,
            },
            fault_seed: 0,
            fault_rate: 0.0,
        },
        &pool,
    )
}

fn serve_config(cache_on: bool) -> ServeConfig {
    ServeConfig {
        queue_capacity: 16, // small enough that the bursts shed
        batch: BatchPolicy {
            max_batch: 8,
            max_delay_ms: 25,
        },
        cache: cache_on.then(CacheConfig::default),
        ..ServeConfig::default()
    }
}

/// Runs the shared serving trace through an observed service and returns
/// the two rendered artifacts: `(metrics.json bytes, trace NDJSON bytes)`.
fn observed_serve_run(
    pipeline: &Pipeline,
    trace: &[ServeRequest],
    corpus: &Corpus,
    cache_on: bool,
    faults: Option<FaultPlan>,
) -> (String, String) {
    let mut sink = ObsSink::new();
    let responses = match faults {
        None => {
            let source = ScraperSource::new(&corpus.world);
            let mut service = ScoringService::new(pipeline.clone(), source, serve_config(cache_on));
            let responses = service.run_trace_observed(trace, &mut sink);
            service.export_metrics(sink.registry_mut());
            responses
        }
        Some(plan) => {
            let flaky = FlakyWorld::new(&corpus.world, plan);
            let source = ScraperSource::with_browser(ResilientBrowser::new(&flaky));
            let mut service = ScoringService::new(pipeline.clone(), source, serve_config(cache_on));
            let responses = service.run_trace_observed(trace, &mut sink);
            service.export_metrics(sink.registry_mut());
            responses
        }
    };
    assert_eq!(responses.len(), trace.len(), "every request answered");
    let (registry, tracer) = sink.into_parts();
    (registry.render_json(), tracer.render_ndjson())
}

/// Asserts that every `(metrics, trace)` pair in `runs` is byte-identical
/// to the first, labelling divergences with `labels`.
fn assert_all_identical(runs: &[(String, String)], labels: &[String]) {
    let (base_metrics, base_trace) = &runs[0];
    for (i, (metrics, trace)) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            base_metrics, metrics,
            "metrics.json diverges: {} vs {}",
            labels[0], labels[i]
        );
        assert_eq!(
            base_trace, trace,
            "trace NDJSON diverges: {} vs {}",
            labels[0], labels[i]
        );
    }
}

/// The flagship sweep: the same serving trace at 1/2/8 threads must
/// render byte-identical metrics.json and NDJSON traces — once with the
/// verdict cache enabled, once without, over a clean web and under a
/// seeded fault plan.
#[test]
fn observed_serve_artifacts_are_invariant_across_threads() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let trace = serving_trace(&corpus);

    for cache_on in [false, true] {
        for faults in [None, Some(FaultPlan::new(5, 0.3))] {
            let mut runs = Vec::new();
            let mut labels = Vec::new();
            for threads in THREAD_COUNTS {
                knowyourphish::exec::set_threads(threads);
                runs.push(observed_serve_run(
                    &pipeline,
                    &trace,
                    &corpus,
                    cache_on,
                    faults.clone(),
                ));
                labels.push(format!(
                    "{threads} threads (cache={cache_on}, faults={})",
                    faults.is_some()
                ));
            }
            assert_all_identical(&runs, &labels);
            // The scenario must actually observe something, or the sweep
            // proves nothing.
            assert!(
                runs[0].1.lines().count() > 100,
                "trace suspiciously small for cache={cache_on}"
            );
        }
    }
    knowyourphish::exec::set_threads(0);
}

/// Pulls one counter/gauge value out of a rendered `metrics.json`.
fn metric_value(rendered: &str, name: &str) -> u64 {
    let v: serde_json::Value = serde_json::from_str(rendered).expect("metrics.json parses");
    let metrics = v
        .get("metrics")
        .and_then(serde_json::Value::as_array)
        .expect("metrics array");
    metrics
        .iter()
        .find(|m| m.get("name").and_then(serde_json::Value::as_str) == Some(name))
        .unwrap_or_else(|| panic!("metric {name:?} missing"))
        .get("value")
        .and_then(serde_json::Value::as_u64)
        .unwrap_or_else(|| panic!("metric {name:?} has no scalar value"))
}

/// Cache state is part of the observed stream: the enabled-cache run
/// must count hits where the disabled run counts nothing at all — a
/// disabled cache emits neither hit nor miss events.
#[test]
fn cache_events_distinguish_the_cache_scenarios() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let trace = serving_trace(&corpus);
    knowyourphish::exec::set_threads(1);

    let (metrics_off, _) = observed_serve_run(&pipeline, &trace, &corpus, false, None);
    let (metrics_on, _) = observed_serve_run(&pipeline, &trace, &corpus, true, None);
    assert_ne!(metrics_off, metrics_on);
    assert!(
        metric_value(&metrics_on, "serve.cache.hits") > 0,
        "a 30%-duplicate trace must hit the enabled cache"
    );
    assert!(metric_value(&metrics_on, "serve.cache.misses") > 0);
    assert_eq!(metric_value(&metrics_off, "serve.cache.hits"), 0);
    assert_eq!(metric_value(&metrics_off, "serve.cache.misses"), 0);
    assert_eq!(metric_value(&metrics_off, "serve.report.cache_enabled"), 0);
    assert_eq!(metric_value(&metrics_on, "serve.report.cache_enabled"), 1);
    knowyourphish::exec::set_threads(0);
}

/// The batch path: `classify_all_observed` over a faulty web must render
/// byte-identical artifacts at every thread count — scrape events stream
/// in fetch order, classification events record per page in the pool and
/// replay in input order.
#[test]
fn observed_batch_artifacts_are_invariant_across_threads() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let mut urls: Vec<String> = corpus.phish_test.iter().map(|r| r.url.clone()).collect();
    urls.extend(corpus.english_test().iter().take(40).cloned());
    urls.push("http://nowhere.invalid/".into());

    let mut runs = Vec::new();
    let mut labels = Vec::new();
    let mut baseline_run = None;
    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        let flaky = FlakyWorld::new(&corpus.world, FaultPlan::new(5, 0.3));
        let mut scraper = ResilientBrowser::new(&flaky);
        let mut sink = ObsSink::new();
        let run = pipeline.classify_all_observed(&mut scraper, &urls, &mut sink);
        match &baseline_run {
            None => baseline_run = Some(run),
            Some(base) => assert_eq!(*base, run, "BatchRun diverges at {threads} threads"),
        }
        let (registry, tracer) = sink.into_parts();
        runs.push((registry.render_json(), tracer.render_ndjson()));
        labels.push(format!("{threads} threads (batch)"));
    }
    assert_all_identical(&runs, &labels);

    let ndjson = &runs[0].1;
    assert!(ndjson.contains("\"scrape\""), "scrape spans must be traced");
    assert!(
        ndjson.contains("\"classify\""),
        "classification spans must be traced"
    );
    knowyourphish::exec::set_threads(0);
}
