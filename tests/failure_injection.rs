//! Failure-injection tests: the system must degrade gracefully on the
//! pathological inputs the paper discusses — empty pages, IP-hosted URLs,
//! redirect loops, broken markup, hostile HTML.

use knowyourphish::core::{
    features::FEATURE_COUNT, DataSources, DetectorConfig, FeatureExtractor, PhishDetector,
    Pipeline, TargetIdentifier, TargetVerdict,
};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::html::Document;
use knowyourphish::ml::Dataset;
use knowyourphish::search::SearchEngine;
use knowyourphish::url::Url;
use knowyourphish::web::{
    BreakerState, Browser, CircuitBreaker, FailureCause, FaultKind, FaultPlan, FlakyWorld, Page,
    ResilientBrowser, RetryPolicy, SourceAvailability, VisitError, VisitedPage, WebWorld,
};
use proptest::prelude::*;
use std::sync::Arc;

fn empty_page_visit(url: &str) -> VisitedPage {
    let u = Url::parse(url).unwrap();
    VisitedPage {
        starting_url: u.clone(),
        landing_url: u.clone(),
        redirection_chain: vec![u],
        logged_links: vec![],
        href_links: vec![],
        text: String::new(),
        title: String::new(),
        copyright: None,
        screenshot_text: String::new(),
        input_count: 0,
        image_count: 0,
        iframe_count: 0,
    }
}

#[test]
fn empty_page_yields_full_feature_vector() {
    let visit = empty_page_visit("http://empty.example.com/");
    let features = FeatureExtractor::default().extract(&visit);
    assert_eq!(features.len(), knowyourphish::core::features::FEATURE_COUNT);
    assert!(features.iter().all(|v| v.is_finite()));
}

#[test]
fn ip_hosted_page_yields_null_fqdn_features() {
    // The paper: IP-based URLs have empty FQDN term distributions.
    let visit = empty_page_visit("http://192.0.2.9/login.php?a=1");
    let sources = DataSources::from_page(&visit);
    assert!(sources.startrdn.is_empty());
    assert!(sources.landrdn.is_empty());
    let features = FeatureExtractor::default().extract(&visit);
    assert!(features.iter().all(|v| v.is_finite()));
}

#[test]
fn target_identifier_handles_contentless_page() {
    let engine = SearchEngine::new();
    let identifier = TargetIdentifier::new(Arc::new(engine));
    let verdict = identifier.identify(&empty_page_visit("http://x1y2z3.tk/f"));
    assert_eq!(verdict, TargetVerdict::Unknown);
}

#[test]
fn redirect_loops_and_dead_ends_are_errors_not_hangs() {
    let mut world = WebWorld::new();
    world.add_redirect("http://a.example.com/", "http://b.example.com/");
    world.add_redirect("http://b.example.com/", "http://a.example.com/");
    world.add_redirect("http://c.example.com/", "http://missing.example.com/");
    let browser = Browser::new(&world);
    assert_eq!(
        browser.visit("http://a.example.com/").unwrap_err(),
        VisitError::TooManyRedirects
    );
    assert!(matches!(
        browser.visit("http://c.example.com/").unwrap_err(),
        VisitError::NotFound(_)
    ));
}

#[test]
fn hostile_markup_is_contained() {
    let nasty = [
        "<<<<>>>>",
        "<a href=",
        "<script>while(true){}</script>",
        "<title><title><title>deep</title>",
        "<body onload=\"x\"><iframe><iframe><iframe>",
        "&#xFFFFFFF; &bogus; &amp",
        "<a href='http://x.com/a'>ok</a><a href=\"broken",
    ];
    for html in nasty {
        let doc = Document::parse(html);
        // No panic, and any extracted link is non-empty.
        assert!(doc.href_links().iter().all(|h| !h.is_empty()), "{html}");
    }
}

#[test]
fn deeply_nested_subdomain_obfuscation_parses() {
    let url =
        Url::parse("http://paypago.com.secure.account.verify.session.login.badhost.tk/p").unwrap();
    assert_eq!(url.rdn().as_deref(), Some("badhost.tk"));
    assert_eq!(url.level_domain_count(), 9);
}

#[test]
fn scraper_skips_pages_that_fail_midworld() {
    // A world where half the URLs are dead: the harness-level behaviour
    // (skip and continue) is exercised via Browser directly.
    let mut world = WebWorld::new();
    world.add_page("http://alive.example.com/", Page::new("<body>ok</body>"));
    let browser = Browser::new(&world);
    assert!(browser.visit("http://alive.example.com/").is_ok());
    assert!(browser.visit("http://dead.example.com/").is_err());
    // The world is untouched by failed visits.
    assert_eq!(world.len(), 1);
}

/// A small world of plain pages, one host each.
fn flaky_test_world(hosts: usize) -> (WebWorld, Vec<String>) {
    let mut world = WebWorld::new();
    let mut urls = Vec::new();
    for i in 0..hosts {
        let url = format!("http://host{i}.example.com/login");
        world.add_page(
            &url,
            Page::new(format!(
                "<title>Site {i}</title><body><a href=\"/about\">about</a>\
                 <p>welcome to site number {i}, please sign in</p></body>"
            )),
        );
        urls.push(url);
    }
    (world, urls)
}

#[test]
fn transient_faults_recover_through_retries() {
    let (world, urls) = flaky_test_world(30);
    let flaky = FlakyWorld::new(&world, FaultPlan::only(5, 0.3, &[FaultKind::Transient]));
    let mut scraper = ResilientBrowser::new(&flaky);
    for url in &urls {
        let scraped = scraper
            .scrape(url)
            .unwrap_or_else(|f| panic!("{url} should recover, failed with {:?}", f.cause));
        assert!(!scraped.availability.is_degraded());
    }
    assert!(
        scraper.total_retries() > 0,
        "a 30% transient rate must force at least one retry"
    );
}

#[test]
fn permanent_timeouts_exhaust_the_deadline_budget() {
    let (world, urls) = flaky_test_world(1);
    let plan = FaultPlan::only(9, 1.0, &[FaultKind::Timeout]);
    let timeout_ms = plan.timeout_ms;
    let flaky = FlakyWorld::new(&world, plan);
    let mut scraper = ResilientBrowser::new(&flaky);
    let policy = scraper.policy().clone();

    let failure = scraper.scrape(&urls[0]).unwrap_err();
    assert!(
        matches!(
            failure.cause,
            FailureCause::DeadlineExceeded | FailureCause::Timeout
        ),
        "got {:?}",
        failure.cause
    );
    // The deadline budget cuts retries short: every attempt costs a full
    // timeout, so far fewer than max_attempts fit in the budget.
    assert!(failure.attempts < policy.max_attempts);
    assert!(failure.elapsed_ms <= policy.deadline_ms + timeout_ms);
}

#[test]
fn circuit_breaker_trips_and_half_opens() {
    let (world, urls) = flaky_test_world(1);
    let url = &urls[0];
    let host = "host0.example.com";
    let flaky = FlakyWorld::new(&world, FaultPlan::only(3, 1.0, &[FaultKind::Transient]));
    let policy = RetryPolicy {
        max_attempts: 1,
        ..RetryPolicy::default()
    };
    let cooldown_ms = 1_000;
    let mut scraper =
        ResilientBrowser::with_policy(&flaky, policy, CircuitBreaker::new(2, cooldown_ms));

    // Two straight failures trip the host's breaker...
    for _ in 0..2 {
        assert_eq!(
            scraper.scrape(url).unwrap_err().cause,
            FailureCause::Transient
        );
    }
    assert_eq!(scraper.breaker().trips(), 1);
    assert_eq!(
        scraper.breaker().state(host, scraper.clock().now_ms()),
        BreakerState::Open
    );

    // ...so the next scrape fails fast without touching the network.
    let fetches_before = flaky.total_fetches();
    let failure = scraper.scrape(url).unwrap_err();
    assert_eq!(failure.cause, FailureCause::CircuitOpen);
    assert_eq!(failure.attempts, 0);
    assert_eq!(flaky.total_fetches(), fetches_before);

    // After the cooldown the breaker half-opens and lets one probe through;
    // the probe fails, so the circuit snaps open again.
    scraper.clock().advance(cooldown_ms + 1);
    assert_eq!(
        scraper.breaker().state(host, scraper.clock().now_ms()),
        BreakerState::HalfOpen
    );
    let failure = scraper.scrape(url).unwrap_err();
    assert_eq!(failure.cause, FailureCause::Transient);
    assert_eq!(failure.attempts, 1, "half-open admits exactly one probe");
    assert!(flaky.total_fetches() > fetches_before);
    assert_eq!(scraper.breaker().trips(), 2);
}

#[test]
fn truncated_page_still_yields_full_feature_vector() {
    let (world, urls) = flaky_test_world(4);
    let flaky = FlakyWorld::new(&world, FaultPlan::only(1, 1.0, &[FaultKind::TruncateHtml]));
    let mut scraper = ResilientBrowser::new(&flaky);
    let extractor = FeatureExtractor::default();
    for url in &urls {
        let scraped = scraper.scrape(url).expect("truncation degrades, not fails");
        assert!(scraped.availability.is_degraded());
        assert!(!scraped.availability.html);
        let features = extractor.extract_degraded(&scraped.visit, &scraped.availability);
        assert_eq!(features.len(), FEATURE_COUNT);
        assert!(features.iter().all(|v| v.is_finite()), "{url}");
    }
}

proptest! {
    /// Whatever sources went missing, a degraded extraction is always a
    /// complete, finite feature vector.
    #[test]
    fn degraded_vectors_are_always_finite_and_fixed_length(
        html in any::<bool>(),
        links in any::<bool>(),
        screenshot in any::<bool>(),
        text in "[a-z ]{0,40}",
        title in "[a-z ]{0,15}",
        host in "[a-z]{3,12}",
    ) {
        let visit = VisitedPage {
            text,
            title,
            ..empty_page_visit(&format!("http://{host}.example.com/a"))
        };
        let mask = SourceAvailability { html, links, screenshot };
        let features = FeatureExtractor::default().extract_degraded(&visit, &mask);
        prop_assert_eq!(features.len(), FEATURE_COUNT);
        prop_assert!(features.iter().all(|v| v.is_finite()));
    }
}

/// The PR's acceptance scenario: a 500-page corpus scraped at a seeded
/// 30% fault rate must classify without panicking, account every failure
/// by cause, and produce bit-identical reports across same-seed runs.
#[test]
fn batch_classification_at_thirty_percent_faults_is_total_and_deterministic() {
    let cfg = CampaignConfig {
        seed: 77,
        phish_train: 60,
        phish_test: 100,
        phish_brand: 10,
        leg_train: 200,
        english_test: 400,
        other_language_test: 0,
    };
    let corpus = Corpus::generate(&cfg);
    let extractor = FeatureExtractor::new(corpus.ranker.clone());

    // Train on a clean scrape, as the paper's operators would.
    let browser = Browser::new(&corpus.world);
    let mut train = Dataset::new(FEATURE_COUNT);
    for url in &corpus.leg_train {
        let visit = browser.visit(url).unwrap();
        train.push_row(&extractor.extract(&visit), false);
    }
    for rec in &corpus.phish_train {
        let visit = browser.visit(&rec.url).unwrap();
        train.push_row(&extractor.extract(&visit), true);
    }
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let identifier = TargetIdentifier::new(Arc::new(corpus.engine.clone()));
    let pipeline = Pipeline::new(extractor, detector, identifier);

    let mut urls: Vec<String> = corpus.english_test().to_vec();
    urls.extend(corpus.phish_test.iter().map(|r| r.url.clone()));
    assert_eq!(urls.len(), 500);

    let run_once = || {
        let flaky = FlakyWorld::new(&corpus.world, FaultPlan::new(2016, 0.3));
        let mut scraper = ResilientBrowser::new(&flaky);
        pipeline.classify_all(&mut scraper, &urls)
    };
    let run = run_once();

    // Totality: every URL is accounted for, exactly once.
    assert_eq!(run.report.requested, 500);
    assert_eq!(run.report.completed + run.report.failed, 500);
    assert_eq!(run.classified.len() as u64, run.report.completed);
    assert_eq!(
        run.report.failures_total(),
        run.report.failed,
        "per-cause failure counts must sum to the failure total"
    );
    assert_eq!(
        run.classified.iter().filter(|c| c.degraded).count() as u64,
        run.report.degraded
    );
    // 30% faults with 4 attempts of headroom: the overwhelming majority
    // of pages still complete, and the faults genuinely bit.
    assert!(run.report.completion_rate() > 0.9);
    assert!(run.report.degraded > 0);
    assert!(run.report.retries > 0);

    // Determinism: a second same-seed run is bit-identical.
    let rerun = run_once();
    assert_eq!(run.classified, rerun.classified);
    assert_eq!(
        serde_json::to_string(&run.report).unwrap(),
        serde_json::to_string(&rerun.report).unwrap()
    );
}

#[test]
fn unicode_soup_everywhere() {
    let visit = VisitedPage {
        text: "ß漢字🦀 ÀÉÎÕÜ çñø — مرحبا мир".repeat(10),
        title: "日本語タイトル β".into(),
        copyright: Some("© ☃".into()),
        screenshot_text: "🎣 phishing".into(),
        ..empty_page_visit("http://unicode.example.com/")
    };
    let features = FeatureExtractor::default().extract(&visit);
    assert!(features.iter().all(|v| v.is_finite()));
    let sources = DataSources::from_page(&visit);
    // Latin-adjacent letters canonicalise; CJK/Arabic/Cyrillic split terms.
    assert!(sources.title.is_empty() || sources.title.terms().count() > 0);
}
