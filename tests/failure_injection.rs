//! Failure-injection tests: the system must degrade gracefully on the
//! pathological inputs the paper discusses — empty pages, IP-hosted URLs,
//! redirect loops, broken markup, hostile HTML.

use knowyourphish::core::{DataSources, FeatureExtractor, TargetIdentifier, TargetVerdict};
use knowyourphish::html::Document;
use knowyourphish::search::SearchEngine;
use knowyourphish::url::Url;
use knowyourphish::web::{Browser, Page, VisitError, VisitedPage, WebWorld};
use std::sync::Arc;

fn empty_page_visit(url: &str) -> VisitedPage {
    let u = Url::parse(url).unwrap();
    VisitedPage {
        starting_url: u.clone(),
        landing_url: u.clone(),
        redirection_chain: vec![u],
        logged_links: vec![],
        href_links: vec![],
        text: String::new(),
        title: String::new(),
        copyright: None,
        screenshot_text: String::new(),
        input_count: 0,
        image_count: 0,
        iframe_count: 0,
    }
}

#[test]
fn empty_page_yields_full_feature_vector() {
    let visit = empty_page_visit("http://empty.example.com/");
    let features = FeatureExtractor::default().extract(&visit);
    assert_eq!(features.len(), knowyourphish::core::features::FEATURE_COUNT);
    assert!(features.iter().all(|v| v.is_finite()));
}

#[test]
fn ip_hosted_page_yields_null_fqdn_features() {
    // The paper: IP-based URLs have empty FQDN term distributions.
    let visit = empty_page_visit("http://192.0.2.9/login.php?a=1");
    let sources = DataSources::from_page(&visit);
    assert!(sources.startrdn.is_empty());
    assert!(sources.landrdn.is_empty());
    let features = FeatureExtractor::default().extract(&visit);
    assert!(features.iter().all(|v| v.is_finite()));
}

#[test]
fn target_identifier_handles_contentless_page() {
    let engine = SearchEngine::new();
    let identifier = TargetIdentifier::new(Arc::new(engine));
    let verdict = identifier.identify(&empty_page_visit("http://x1y2z3.tk/f"));
    assert_eq!(verdict, TargetVerdict::Unknown);
}

#[test]
fn redirect_loops_and_dead_ends_are_errors_not_hangs() {
    let mut world = WebWorld::new();
    world.add_redirect("http://a.example.com/", "http://b.example.com/");
    world.add_redirect("http://b.example.com/", "http://a.example.com/");
    world.add_redirect("http://c.example.com/", "http://missing.example.com/");
    let browser = Browser::new(&world);
    assert_eq!(
        browser.visit("http://a.example.com/").unwrap_err(),
        VisitError::TooManyRedirects
    );
    assert!(matches!(
        browser.visit("http://c.example.com/").unwrap_err(),
        VisitError::NotFound(_)
    ));
}

#[test]
fn hostile_markup_is_contained() {
    let nasty = [
        "<<<<>>>>",
        "<a href=",
        "<script>while(true){}</script>",
        "<title><title><title>deep</title>",
        "<body onload=\"x\"><iframe><iframe><iframe>",
        "&#xFFFFFFF; &bogus; &amp",
        "<a href='http://x.com/a'>ok</a><a href=\"broken",
    ];
    for html in nasty {
        let doc = Document::parse(html);
        // No panic, and any extracted link is non-empty.
        assert!(doc.href_links().iter().all(|h| !h.is_empty()), "{html}");
    }
}

#[test]
fn deeply_nested_subdomain_obfuscation_parses() {
    let url =
        Url::parse("http://paypago.com.secure.account.verify.session.login.badhost.tk/p").unwrap();
    assert_eq!(url.rdn().as_deref(), Some("badhost.tk"));
    assert_eq!(url.level_domain_count(), 9);
}

#[test]
fn scraper_skips_pages_that_fail_midworld() {
    // A world where half the URLs are dead: the harness-level behaviour
    // (skip and continue) is exercised via Browser directly.
    let mut world = WebWorld::new();
    world.add_page("http://alive.example.com/", Page::new("<body>ok</body>"));
    let browser = Browser::new(&world);
    assert!(browser.visit("http://alive.example.com/").is_ok());
    assert!(browser.visit("http://dead.example.com/").is_err());
    // The world is untouched by failed visits.
    assert_eq!(world.len(), 1);
}

#[test]
fn unicode_soup_everywhere() {
    let visit = VisitedPage {
        text: "ß漢字🦀 ÀÉÎÕÜ çñø — مرحبا мир".repeat(10),
        title: "日本語タイトル β".into(),
        copyright: Some("© ☃".into()),
        screenshot_text: "🎣 phishing".into(),
        ..empty_page_visit("http://unicode.example.com/")
    };
    let features = FeatureExtractor::default().extract(&visit);
    assert!(features.iter().all(|v| v.is_finite()));
    let sources = DataSources::from_page(&visit);
    // Latin-adjacent letters canonicalise; CJK/Arabic/Cyrillic split terms.
    assert!(sources.title.is_empty() || sources.title.terms().count() > 0);
}
