//! The execution layer's hard requirement: bit-identical outputs at any
//! thread count.
//!
//! Every parallel path introduced by `kyp-exec` — batch classification,
//! batch feature extraction, gradient-boosting fits, dataset scoring,
//! cross-validation folds — must produce byte-for-byte the same result at
//! 1, 2 and 8 threads. Each test drives the thread count through
//! `kyp_exec::set_threads` (the same knob `KYP_THREADS` and `--threads`
//! plumb into) and compares serialized outputs across counts.
//!
//! The tests restore auto-detection (`set_threads(0)`) on exit; because
//! every computation is thread-count-invariant by design, a concurrent
//! test observing a temporary override still sees identical results.

use knowyourphish::core::{
    DetectorConfig, FeatureExtractor, PhishDetector, Pipeline, TargetIdentifier,
};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::{cv, Dataset, GbmParams, GradientBoosting};
use knowyourphish::web::{FaultPlan, FlakyWorld, ResilientBrowser};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn small_corpus() -> Corpus {
    Corpus::generate(&CampaignConfig {
        seed: 77,
        phish_train: 40,
        phish_test: 30,
        phish_brand: 8,
        leg_train: 160,
        english_test: 80,
        other_language_test: 10,
    })
}

fn training_data(corpus: &Corpus, extractor: &FeatureExtractor) -> Dataset {
    let browser = knowyourphish::web::Browser::new(&corpus.world);
    let mut data = Dataset::new(extractor.feature_count());
    for url in &corpus.leg_train {
        data.push_row(&extractor.extract(&browser.visit(url).unwrap()), false);
    }
    for r in &corpus.phish_train {
        data.push_row(&extractor.extract(&browser.visit(&r.url).unwrap()), true);
    }
    data
}

/// `PhishDetector::train` (GBM fit with parallel split search and binned
/// raw-score updates) must serialize identically at every thread count.
#[test]
fn detector_training_is_thread_count_invariant() {
    let corpus = small_corpus();
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let train = training_data(&corpus, &extractor);

    let mut baseline: Option<String> = None;
    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        let detector = PhishDetector::train(&train, &DetectorConfig::default());
        let json = serde_json::to_string(&detector).unwrap();
        match &baseline {
            None => baseline = Some(json),
            Some(base) => {
                assert!(*base == json, "trained model diverges at {threads} threads");
            }
        }
    }
    knowyourphish::exec::set_threads(0);
}

/// `Pipeline::classify_all` over a faulty web: verdict order, per-verdict
/// content and the full `ScrapeReport` must be byte-identical at every
/// thread count.
#[test]
fn classify_all_is_thread_count_invariant() {
    let corpus = small_corpus();
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let train = training_data(&corpus, &extractor);

    knowyourphish::exec::set_threads(1);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let pipeline = Pipeline::new(
        extractor,
        detector,
        TargetIdentifier::new(Arc::new(corpus.engine.clone())),
    );

    let mut urls: Vec<String> = corpus.phish_test.iter().map(|r| r.url.clone()).collect();
    urls.extend(corpus.english_test().iter().take(40).cloned());
    urls.push("http://nowhere.invalid/".into());
    urls.push("not a url".into());

    let mut baseline: Option<(String, Vec<String>)> = None;
    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        let flaky = FlakyWorld::new(&corpus.world, FaultPlan::new(5, 0.3));
        let mut scraper = ResilientBrowser::new(&flaky);
        let run = pipeline.classify_all(&mut scraper, &urls);
        let report_json = serde_json::to_string(&run.report).unwrap();
        let verdicts: Vec<String> = run
            .classified
            .iter()
            .map(|c| format!("{} {:?} {}", c.url, c.verdict, c.degraded))
            .collect();
        match &baseline {
            None => baseline = Some((report_json, verdicts)),
            Some((base_report, base_verdicts)) => {
                assert_eq!(
                    *base_report, report_json,
                    "scrape report diverges at {threads} threads"
                );
                assert_eq!(
                    *base_verdicts, verdicts,
                    "verdicts diverge at {threads} threads"
                );
            }
        }
    }
    knowyourphish::exec::set_threads(0);
}

/// Stratified k-fold CV with concurrently fitted folds must pool the same
/// scores in the same order at every thread count, and match the serial
/// `cross_validate` bit for bit.
#[test]
fn kfold_is_thread_count_invariant() {
    let corpus = small_corpus();
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let data = training_data(&corpus, &extractor);

    let params = GbmParams {
        n_trees: 30,
        seed: 3,
        ..GbmParams::default()
    };
    let fit = |tr: &Dataset, te: &Dataset| -> Vec<f64> {
        GradientBoosting::fit(tr, &params).predict_dataset(te)
    };

    knowyourphish::exec::set_threads(1);
    let (serial_scores, serial_labels) = cv::cross_validate(&data, 4, 11, fit);
    let serial_bits: Vec<u64> = serial_scores.iter().map(|s| s.to_bits()).collect();

    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        let (scores, labels) = cv::cross_validate_par(&data, 4, 11, fit);
        let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(serial_bits, bits, "CV scores diverge at {threads} threads");
        assert_eq!(serial_labels, labels);
    }
    knowyourphish::exec::set_threads(0);
}

/// Batch feature extraction and batch scoring agree with the pointwise
/// serial path at every thread count.
#[test]
fn batch_extraction_and_scoring_are_thread_count_invariant() {
    let corpus = small_corpus();
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let browser = knowyourphish::web::Browser::new(&corpus.world);
    let visits: Vec<_> = corpus
        .english_test()
        .iter()
        .chain(corpus.phish_test.iter().map(|r| &r.url).take(20))
        .filter_map(|u| browser.visit(u).ok())
        .collect();
    assert!(visits.len() >= 40, "corpus must yield a real batch");

    knowyourphish::exec::set_threads(1);
    let train = training_data(&corpus, &extractor);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let serial_rows: Vec<Vec<f64>> = visits.iter().map(|v| extractor.extract(v)).collect();
    let mut test = Dataset::new(extractor.feature_count());
    for row in &serial_rows {
        test.push_row(row, false);
    }
    let serial_scores: Vec<u64> = detector
        .score_dataset(&test)
        .iter()
        .map(|s| s.to_bits())
        .collect();

    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        assert_eq!(
            extractor.extract_batch(&visits),
            serial_rows,
            "feature vectors diverge at {threads} threads"
        );
        let bits: Vec<u64> = detector
            .score_dataset(&test)
            .iter()
            .map(|s| s.to_bits())
            .collect();
        assert_eq!(serial_scores, bits, "scores diverge at {threads} threads");
    }
    knowyourphish::exec::set_threads(0);
}
