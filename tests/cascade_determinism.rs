//! The two-stage cascade's determinism contract, end to end.
//!
//! The cascade pre-filter is a pure function of the request URL string,
//! so switching it on must not cost any determinism: the verdict stream
//! stays byte-identical across thread counts, across cache settings,
//! and under a seeded fault plan. And with the forced-full band `[0, 1]`
//! every request falls through to the full pipeline, so the stream must
//! be byte-identical to a run without the cascade at all — the CLI-level
//! equivalence CI proves with `cmp`, pinned here at the library level
//! for serve and cluster both.
//!
//! The tagged URL-stage snapshot round-trips too: `train → save → load →
//! from_snapshot` must screen exactly like the in-memory classifier, and
//! a full-stage snapshot must be rejected as a cascade model.

use knowyourphish::cluster::{verdict_stream, ClusterConfig, ClusterService};
use knowyourphish::core::{
    cascade::train_url_stage, CascadeBand, CascadeClassifier, CascadeDecision, DetectorConfig,
    FeatureExtractor, ModelSnapshot, PhishDetector, Pipeline, TargetIdentifier,
};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::Dataset;
use knowyourphish::serve::{
    generate, ArrivalPattern, BatchPolicy, CacheConfig, ScoringService, ScraperSource, ServeConfig,
    ServeRequest, ServeResponse, WorkloadConfig,
};
use knowyourphish::web::{FaultPlan, FlakyWorld, ResilientBrowser};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn small_corpus() -> Corpus {
    Corpus::generate(&CampaignConfig {
        seed: 92,
        phish_train: 40,
        phish_test: 30,
        phish_brand: 8,
        leg_train: 160,
        english_test: 80,
        other_language_test: 10,
    })
}

fn train_detector(corpus: &Corpus, extractor: &FeatureExtractor) -> PhishDetector {
    let browser = knowyourphish::web::Browser::new(&corpus.world);
    let mut data = Dataset::new(extractor.feature_count());
    for url in &corpus.leg_train {
        data.push_row(&extractor.extract(&browser.visit(url).unwrap()), false);
    }
    for r in &corpus.phish_train {
        data.push_row(&extractor.extract(&browser.visit(&r.url).unwrap()), true);
    }
    PhishDetector::train(&data, &DetectorConfig::default())
}

fn pipeline_for(corpus: &Corpus) -> Pipeline {
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    knowyourphish::exec::set_threads(1);
    let detector = train_detector(corpus, &extractor);
    Pipeline::new(
        extractor,
        detector,
        TargetIdentifier::new(Arc::new(corpus.engine.clone())),
    )
}

/// Trains the URL stage on the corpus's training URLs.
fn cascade_for(corpus: &Corpus, band: CascadeBand) -> CascadeClassifier {
    let phish_train: Vec<String> = corpus.phish_train.iter().map(|r| r.url.clone()).collect();
    let detector = train_url_stage(
        &corpus.leg_train,
        &phish_train,
        &corpus.ranker,
        &DetectorConfig::url_stage(),
    )
    .expect("train URL stage");
    CascadeClassifier::new(detector, corpus.ranker.clone(), band)
}

/// A seeded 30%-duplicate trace over the corpus's test URLs, with two
/// unfetchable URLs mixed into the pool so failure responses are part of
/// the compared stream.
fn serving_trace(corpus: &Corpus) -> Vec<ServeRequest> {
    let mut pool: Vec<String> = corpus.phish_test.iter().map(|r| r.url.clone()).collect();
    pool.extend(corpus.english_test().iter().take(40).cloned());
    pool.push("http://nowhere.invalid/".into());
    pool.push("not a url".into());
    generate(
        &WorkloadConfig {
            seed: 405,
            requests: 300,
            duplicate_rate: 0.3,
            arrival: ArrivalPattern::Bursty {
                burst: 12,
                burst_gap_ms: 1,
                idle_gap_ms: 30,
            },
            fault_seed: 0,
            fault_rate: 0.0,
        },
        &pool,
    )
}

fn serve_config(cache_on: bool) -> ServeConfig {
    ServeConfig {
        queue_capacity: 16,
        batch: BatchPolicy {
            max_batch: 8,
            max_delay_ms: 25,
        },
        cache: cache_on.then(CacheConfig::default),
        ..ServeConfig::default()
    }
}

fn verdict_lines<S: knowyourphish::serve::PageSource>(
    mut service: ScoringService<S>,
    trace: &[ServeRequest],
) -> Vec<String> {
    service
        .run_trace(trace)
        .iter()
        .map(ServeResponse::verdict_line)
        .collect()
}

/// Cascade on, over a seeded faulty web: the verdict stream must be
/// byte-identical at 1/2/8 threads and cache on/off, and the URL stage
/// must actually fire (otherwise this collapses into the plain serve
/// determinism test).
#[test]
fn cascade_stream_is_invariant_across_threads_cache_and_faults() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let trace = serving_trace(&corpus);
    let cascade = cascade_for(&corpus, CascadeBand::default());

    let mut baseline: Option<Vec<String>> = None;
    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        for cache_on in [false, true] {
            let flaky = FlakyWorld::new(&corpus.world, FaultPlan::new(5, 0.3));
            let source = ScraperSource::with_browser(ResilientBrowser::new(&flaky));
            let service = ScoringService::new(pipeline.clone(), source, serve_config(cache_on))
                .with_cascade(cascade.clone());
            let lines = verdict_lines(service, &trace);
            assert_eq!(lines.len(), trace.len(), "every request must be answered");
            match &baseline {
                None => baseline = Some(lines),
                Some(base) => assert_eq!(
                    *base, lines,
                    "cascade verdict stream diverges at {threads} threads, cache={cache_on}"
                ),
            }
        }
    }
    let lines = baseline.expect("sweep ran");
    assert!(
        lines.iter().any(|l| l.contains(" stage=url_only")),
        "the default band should finalise some URLs at the URL stage"
    );
    knowyourphish::exec::set_threads(0);
}

/// With the forced-full band every request falls through, so a cascade
/// service must emit byte-for-byte the stream of a cascade-free one — at
/// every thread count, on a clean and on a faulty web.
#[test]
fn forced_full_band_matches_the_cascade_free_stream() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let trace = serving_trace(&corpus);
    let forced = cascade_for(&corpus, CascadeBand::FORCED_FULL);

    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        for fault_rate in [0.0, 0.3] {
            // One FlakyWorld per run: it counts fetch attempts, so sharing
            // it would hand the second run a different fault schedule.
            let flaky = FlakyWorld::new(&corpus.world, FaultPlan::new(5, fault_rate));
            let source = ScraperSource::with_browser(ResilientBrowser::new(&flaky));
            let plain = verdict_lines(
                ScoringService::new(pipeline.clone(), source, serve_config(true)),
                &trace,
            );

            let flaky = FlakyWorld::new(&corpus.world, FaultPlan::new(5, fault_rate));
            let source = ScraperSource::with_browser(ResilientBrowser::new(&flaky));
            let mut service = ScoringService::new(pipeline.clone(), source, serve_config(true))
                .with_cascade(forced.clone());
            let cascaded: Vec<String> = service
                .run_trace(&trace)
                .iter()
                .map(ServeResponse::verdict_line)
                .collect();
            let report = service.report();

            assert_eq!(
                plain, cascaded,
                "forced-full band diverges from the cascade-free stream \
                 at {threads} threads, fault rate {fault_rate}"
            );
            assert!(report.cascade_enabled);
            assert_eq!(report.cascade.url_only, 0, "no URL may be final at [0,1]");
            assert_eq!(
                report.cascade.screened,
                report.cascade.fallthrough + report.cascade.unscorable
            );
        }
    }
    knowyourphish::exec::set_threads(0);
}

/// The same two contracts at the cluster layer: the id-sorted verdict
/// stream with the cascade on is invariant across threads and shard
/// counts, and the forced-full band reproduces the cascade-free bytes.
#[test]
fn cluster_cascade_stream_is_invariant_and_forced_full_matches() {
    let corpus = small_corpus();
    let pipeline = pipeline_for(&corpus);
    let trace = serving_trace(&corpus);
    let cascade = cascade_for(&corpus, CascadeBand::default());
    let forced = cascade_for(&corpus, CascadeBand::FORCED_FULL);

    let config = |shards: usize| ClusterConfig {
        shards,
        node: serve_config(true),
        ..ClusterConfig::default()
    };

    let mut baseline: Option<Vec<String>> = None;
    for threads in THREAD_COUNTS {
        knowyourphish::exec::set_threads(threads);
        for shards in [1, 3] {
            let source = ScraperSource::new(&corpus.world);
            let mut cluster = ClusterService::new(pipeline.clone(), source, config(shards))
                .with_cascade(cascade.clone());
            let lines = verdict_stream(&cluster.run_trace(&trace));
            match &baseline {
                None => baseline = Some(lines),
                Some(base) => assert_eq!(
                    *base, lines,
                    "cluster cascade stream diverges at {threads} threads, {shards} shards"
                ),
            }
        }

        let source = ScraperSource::new(&corpus.world);
        let mut plain_cluster = ClusterService::new(pipeline.clone(), source, config(2));
        let plain = verdict_stream(&plain_cluster.run_trace(&trace));

        let source = ScraperSource::new(&corpus.world);
        let mut forced_cluster =
            ClusterService::new(pipeline.clone(), source, config(2)).with_cascade(forced.clone());
        let forced_lines = verdict_stream(&forced_cluster.run_trace(&trace));
        assert_eq!(
            plain, forced_lines,
            "cluster forced-full band diverges from the cascade-free stream at {threads} threads"
        );
        assert_eq!(forced_cluster.report().cascade.url_only, 0);
    }
    assert!(
        baseline
            .expect("sweep ran")
            .iter()
            .any(|l| l.contains(" stage=url_only")),
        "the default band should finalise some URLs at the cluster router"
    );
    knowyourphish::exec::set_threads(0);
}

/// `train → save → load → from_snapshot` must be lossless for the URL
/// stage: the reloaded classifier screens every URL exactly like the
/// in-memory one — and a full-stage snapshot is rejected, because
/// scoring 17 URL features with a 212-feature model would be silently
/// wrong.
#[test]
fn url_stage_snapshot_round_trip_screens_identically() {
    let corpus = small_corpus();
    knowyourphish::exec::set_threads(1);
    let phish_train: Vec<String> = corpus.phish_train.iter().map(|r| r.url.clone()).collect();
    let detector = train_url_stage(
        &corpus.leg_train,
        &phish_train,
        &corpus.ranker,
        &DetectorConfig::url_stage(),
    )
    .unwrap();
    let band = CascadeBand::default();
    let original = CascadeClassifier::new(detector.clone(), corpus.ranker.clone(), band);

    let snapshot = ModelSnapshot::new_url_stage(detector, corpus.ranker.clone());
    assert_eq!(snapshot.stage(), knowyourphish::core::STAGE_URL);
    let dir = std::env::temp_dir().join("kyp_cascade_determinism_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("url_model.json");
    snapshot.save(&path).unwrap();
    let loaded = ModelSnapshot::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let reloaded = CascadeClassifier::from_snapshot(loaded, band).unwrap();

    let mut urls: Vec<String> = corpus.phish_test.iter().map(|r| r.url.clone()).collect();
    urls.extend(corpus.english_test().iter().cloned());
    urls.push("not a url".into());
    let mut finals = 0;
    for url in &urls {
        assert_eq!(
            original.url_score(url).map(f64::to_bits),
            reloaded.url_score(url).map(f64::to_bits),
            "URL score diverges after the snapshot round trip for {url}"
        );
        match (original.prescreen(url), reloaded.prescreen(url)) {
            (CascadeDecision::Final(a), CascadeDecision::Final(b)) => {
                finals += 1;
                assert_eq!(a.verdict, b.verdict);
                assert_eq!(a.stage, b.stage);
            }
            (
                CascadeDecision::Uncertain { url_score: a },
                CascadeDecision::Uncertain { url_score: b },
            ) => {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            (CascadeDecision::Unscorable, CascadeDecision::Unscorable) => {}
            (a, b) => panic!("decisions diverge for {url}: {a:?} vs {b:?}"),
        }
    }
    assert!(
        finals > 0,
        "some test URLs should be final at the URL stage"
    );

    // A full-stage snapshot is not a cascade model.
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let full = ModelSnapshot::new(train_detector(&corpus, &extractor), corpus.ranker.clone());
    assert!(
        CascadeClassifier::from_snapshot(full, band).is_err(),
        "a full-stage snapshot must be rejected as a URL-stage model"
    );
    knowyourphish::exec::set_threads(0);
}
