//! Target identification across phishing hosting strategies: whatever
//! obfuscation the phisher picks, the five-step process should name the
//! brand for kits that carry brand hints.

use knowyourphish::core::{TargetIdentifier, TargetVerdict};
use knowyourphish::datagen::{
    BrandCorpus, EvasionProfile, HostingStrategy, Language, PhishGenerator, SiteGenerator,
};
use knowyourphish::search::SearchEngine;
use knowyourphish::web::{Browser, WebWorld};
use std::sync::Arc;

fn setup() -> (WebWorld, Arc<SearchEngine>, BrandCorpus) {
    let brands = BrandCorpus::standard();
    let mut world = WebWorld::new();
    let mut engine = SearchEngine::new();
    let mut site_gen = SiteGenerator::new(5);
    for brand in brands.brands() {
        let info = site_gen.brand_site(&mut world, brand, Language::English);
        engine.index_page(&info.rdn, &info.mld, &info.index_text);
    }
    (world, Arc::new(engine), brands)
}

#[test]
fn every_hosting_strategy_is_attributable() {
    let (mut world, engine, brands) = setup();
    let mut generator = PhishGenerator::new(77);
    let mut sites = Vec::new();
    for (i, strategy) in HostingStrategy::ALL.into_iter().enumerate() {
        for j in 0..8 {
            let brand = brands.cyclic(i * 17 + j);
            let site = generator.phish_site(
                &mut world,
                brand,
                Language::English,
                Some(strategy),
                EvasionProfile::default(),
            );
            sites.push((strategy, brand.name.clone(), site.start_url));
        }
    }

    let identifier = TargetIdentifier::new(engine);
    let browser = Browser::new(&world);
    let mut per_strategy: std::collections::HashMap<String, (usize, usize)> =
        std::collections::HashMap::new();
    for (strategy, target, url) in &sites {
        let visit = browser.visit(url).unwrap();
        let verdict = identifier.identify(&visit);
        let entry = per_strategy
            .entry(format!("{strategy:?}"))
            .or_insert((0, 0));
        entry.1 += 1;
        if verdict.has_target_in_top(target, 3) {
            entry.0 += 1;
        }
    }
    for (strategy, (hit, total)) in &per_strategy {
        assert!(
            hit * 2 > *total,
            "{strategy}: only {hit}/{total} kits attributed"
        );
    }
    // Overall rate must be high.
    let (hits, totals): (usize, usize) = per_strategy
        .values()
        .fold((0, 0), |(h, t), (a, b)| (h + a, t + b));
    assert!(hits as f64 / totals as f64 > 0.8, "overall {hits}/{totals}");
}

#[test]
fn phish_never_confirmed_legitimate_by_mistake() {
    let (mut world, engine, brands) = setup();
    let mut generator = PhishGenerator::new(123);
    let mut urls = Vec::new();
    for i in 0..30 {
        let site = generator.phish_site(
            &mut world,
            brands.cyclic(i),
            Language::English,
            None,
            EvasionProfile::default(),
        );
        urls.push(site.start_url);
    }
    let identifier = TargetIdentifier::new(engine);
    let browser = Browser::new(&world);
    let mut confirmed_legit = 0;
    for url in &urls {
        let visit = browser.visit(url).unwrap();
        if matches!(
            identifier.identify(&visit),
            TargetVerdict::Legitimate { .. }
        ) {
            confirmed_legit += 1;
        }
    }
    assert!(
        confirmed_legit <= 1,
        "{confirmed_legit}/30 phish wrongly cleared"
    );
}

#[test]
fn brand_sites_in_every_language_confirmed() {
    let (mut world, _engine, brands) = setup();
    // Rebuild the engine including localized brand pages.
    let mut engine = SearchEngine::new();
    let mut site_gen = SiteGenerator::new(5);
    let mut urls = Vec::new();
    for (i, lang) in Language::ALL.into_iter().enumerate() {
        let brand = brands.cyclic(i * 7);
        let info = site_gen.brand_site(&mut world, brand, lang);
        engine.index_page(&info.rdn, &info.mld, &info.index_text);
        urls.push((lang, info.start_url));
    }
    let identifier = TargetIdentifier::new(Arc::new(engine));
    let browser = Browser::new(&world);
    let mut confirmed = 0;
    for (_, url) in &urls {
        let visit = browser.visit(url).unwrap();
        if matches!(
            identifier.identify(&visit),
            TargetVerdict::Legitimate { .. }
        ) {
            confirmed += 1;
        }
    }
    assert!(
        confirmed >= 5,
        "only {confirmed}/6 localized brand sites confirmed"
    );
}
