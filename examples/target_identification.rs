//! Target identification (paper Section V): given a suspected phishing
//! page, extract its keyterms and name the brand it impersonates.
//!
//! Run with: `cargo run --release --example target_identification`

use knowyourphish::core::keyterms;
use knowyourphish::core::{DataSources, TargetIdentifier, TargetVerdict};
use knowyourphish::datagen::{
    BrandCorpus, EvasionProfile, HostingStrategy, Language, PhishGenerator, SiteGenerator,
};
use knowyourphish::search::SearchEngine;
use knowyourphish::web::{Browser, WebWorld};
use std::sync::Arc;

fn main() {
    // A small web: the brands' real sites are indexed by the search
    // engine; the phish is not (search engines don't index fresh phish).
    let brands = BrandCorpus::standard();
    let mut world = WebWorld::new();
    let mut engine = SearchEngine::new();
    let mut site_gen = SiteGenerator::new(1);
    for i in 0..10 {
        let brand = brands.cyclic(i);
        let info = site_gen.brand_site(&mut world, brand, Language::English);
        engine.index_page(&info.rdn, &info.mld, &info.index_text);
    }

    // A phishing kit against brand #0, hosted on a throwaway domain.
    let target = brands.cyclic(0);
    let mut phish_gen = PhishGenerator::new(9);
    let phish = phish_gen.phish_site(
        &mut world,
        target,
        Language::English,
        Some(HostingStrategy::Compromised),
        EvasionProfile::default(),
    );

    // Generate the real brand site we will test afterwards, before the
    // world is borrowed by the browser.
    let info = site_gen.brand_site(&mut world, target, Language::English);

    let browser = Browser::new(&world);
    let visit = browser.visit(&phish.start_url).expect("phish loads");
    println!("suspected page : {}", visit.landing_url);
    println!("title          : {:?}", visit.title);

    // Keyterms (Section V-A).
    let sources = DataSources::from_page(&visit);
    println!(
        "boosted prominent terms : {:?}",
        keyterms::boosted_prominent_terms(&sources, 5)
    );
    println!(
        "prominent terms         : {:?}",
        keyterms::prominent_terms(&sources, 5)
    );

    // The five-step identification process (Section V-B).
    let identifier = TargetIdentifier::new(Arc::new(engine));
    match identifier.identify(&visit) {
        TargetVerdict::Phish { candidates } => {
            println!("verdict        : PHISH");
            for (rank, c) in candidates.iter().enumerate() {
                println!(
                    "  target #{}   : {} ({}) — {} appearances",
                    rank + 1,
                    c.mld,
                    c.rdn,
                    c.appearances
                );
            }
            assert_eq!(candidates[0].mld, target.name, "found the right target");
        }
        TargetVerdict::Legitimate { step } => {
            println!("verdict        : legitimate (confirmed at step {step})");
        }
        TargetVerdict::Unknown => println!("verdict        : suspicious, no target found"),
    }

    // The same process confirms the real brand site as legitimate.
    let legit_visit = browser.visit(&info.start_url).expect("brand site loads");
    println!();
    println!("real brand site: {}", legit_visit.landing_url);
    match identifier.identify(&legit_visit) {
        TargetVerdict::Legitimate { step } => {
            println!("verdict        : legitimate (confirmed at step {step})");
        }
        other => println!("verdict        : {other:?}"),
    }
}
