//! Client-side real-time protection: the browser-add-on scenario of the
//! paper (Section I / [3]). A user browses a mixed stream of pages; the
//! full pipeline (detector + target identifier) warns on phish, names the
//! impersonated brand, and uses target identification to clear detector
//! false positives.
//!
//! Run with: `cargo run --release --example browsing_protection`

use knowyourphish::core::{
    DetectorConfig, FeatureExtractor, PhishDetector, Pipeline, PipelineVerdict, TargetIdentifier,
};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::Dataset;
use knowyourphish::web::Browser;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let corpus = Corpus::generate(&CampaignConfig::scaled(0.02));
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let browser = Browser::new(&corpus.world);

    // Train the detector once (this would ship with the add-on).
    let mut train = Dataset::new(knowyourphish::core::features::FEATURE_COUNT);
    for url in &corpus.leg_train {
        train.push_row(&extractor.extract(&browser.visit(url).unwrap()), false);
    }
    for r in &corpus.phish_train {
        train.push_row(&extractor.extract(&browser.visit(&r.url).unwrap()), true);
    }
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let identifier = TargetIdentifier::new(Arc::new(corpus.engine.clone()));
    let pipeline = Pipeline::new(extractor, detector, identifier);

    // A browsing session: mostly legitimate pages, a few phish links from
    // "emails".
    let mut session: Vec<(&str, bool)> = Vec::new();
    for url in corpus.english_test().iter().take(20) {
        session.push((url, false));
    }
    for r in corpus.phish_test.iter().take(4) {
        session.push((&r.url, true));
    }

    let mut warnings = 0;
    let mut cleared = 0;
    let started = Instant::now();
    for (url, truly_phish) in &session {
        let visit = browser.visit(url).expect("page loads");
        match pipeline.classify(&visit) {
            PipelineVerdict::Legitimate { .. } => {}
            PipelineVerdict::ConfirmedLegitimate { score, step } => {
                cleared += 1;
                println!(
                    "  [cleared]  {url}\n             flagged ({score:.2}) but confirmed legitimate at step {step}"
                );
            }
            PipelineVerdict::Phish { score, candidates } => {
                warnings += 1;
                let target = candidates.first().map_or("unknown", |c| c.mld.as_str());
                println!(
                    "  [WARNING]  {url}\n             phishing ({score:.2}), impersonating {target} (truth: {})",
                    if *truly_phish { "phish" } else { "legitimate" }
                );
            }
            PipelineVerdict::Suspicious { score } => {
                warnings += 1;
                println!("  [caution]  {url}\n             suspicious ({score:.2}), no target identified");
            }
        }
    }
    let elapsed = started.elapsed();
    println!();
    println!(
        "session: {} pages, {warnings} warnings, {cleared} false alarms cleared, {:.1} ms/page",
        session.len(),
        elapsed.as_secs_f64() * 1e3 / session.len() as f64
    );
}
