//! Language independence (paper Table VI): train the detector on English
//! pages only, then classify French, German, Italian, Portuguese and
//! Spanish pages — accuracy holds because the features measure term
//! *consistency*, never term identity.
//!
//! Run with: `cargo run --release --example multilingual`

use knowyourphish::core::{DetectorConfig, FeatureExtractor, PhishDetector};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::{metrics, Dataset};
use knowyourphish::web::Browser;

fn main() {
    let corpus = Corpus::generate(&CampaignConfig::scaled(0.03));
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let browser = Browser::new(&corpus.world);

    // English-only training, as in the paper's scenario 2.
    let mut train = Dataset::new(knowyourphish::core::features::FEATURE_COUNT);
    for url in &corpus.leg_train {
        train.push_row(&extractor.extract(&browser.visit(url).unwrap()), false);
    }
    for r in &corpus.phish_train {
        train.push_row(&extractor.extract(&browser.visit(&r.url).unwrap()), true);
    }
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    println!("trained on {} English pages\n", train.len());

    // Phishing test scores are shared across language evaluations.
    let phish_scores: Vec<f64> = corpus
        .phish_test
        .iter()
        .map(|r| detector.score(&extractor.extract(&browser.visit(&r.url).unwrap())))
        .collect();

    println!(
        "{:<12} {:>9} {:>9} {:>9}",
        "Language", "Precision", "Recall", "FP Rate"
    );
    for (language, urls) in &corpus.language_tests {
        let mut scores: Vec<f64> = urls
            .iter()
            .map(|u| detector.score(&extractor.extract(&browser.visit(u).unwrap())))
            .collect();
        let mut labels = vec![false; scores.len()];
        scores.extend_from_slice(&phish_scores);
        labels.extend(std::iter::repeat_n(true, phish_scores.len()));

        let conf = metrics::Confusion::at_threshold(&scores, &labels, detector.threshold());
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.4}",
            language.name(),
            conf.precision(),
            conf.recall(),
            conf.fpr()
        );
    }
    println!();
    println!("no dictionary, no bag-of-words: only term-usage consistency");
}
