//! Quickstart: generate a small synthetic web, train the phishing
//! detector, and classify a phish and a legitimate page.
//!
//! Run with: `cargo run --release --example quickstart`

use knowyourphish::core::{DetectorConfig, FeatureExtractor, PhishDetector};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::Dataset;
use knowyourphish::web::Browser;

fn main() {
    // 1. Generate a deterministic corpus (a scaled-down Table V).
    let corpus = Corpus::generate(&CampaignConfig::scaled(0.02));
    println!(
        "corpus: {} phish train, {} legit train, {} hosted entries",
        corpus.phish_train.len(),
        corpus.leg_train.len(),
        corpus.world_len()
    );

    // 2. Scrape the training URLs and extract the 212 features.
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let browser = Browser::new(&corpus.world);
    let mut train = Dataset::new(knowyourphish::core::features::FEATURE_COUNT);
    for url in &corpus.leg_train {
        let visit = browser.visit(url).expect("legit page loads");
        train.push_row(&extractor.extract(&visit), false);
    }
    for record in &corpus.phish_train {
        let visit = browser.visit(&record.url).expect("phish page loads");
        train.push_row(&extractor.extract(&visit), true);
    }

    // 3. Train the Gradient Boosting detector (threshold 0.7, as in the
    //    paper).
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    println!(
        "trained on {} pages ({} phish), {} trees",
        train.len(),
        train.positives(),
        detector.model().n_trees()
    );

    // 4. Classify unseen pages.
    let phish_url = &corpus.phish_test[0].url;
    let phish_visit = browser.visit(phish_url).expect("phish loads");
    let phish_score = detector.score(&extractor.extract(&phish_visit));
    println!();
    println!("phish   {phish_url}");
    println!("        title {:?}", phish_visit.title);
    println!(
        "        confidence {phish_score:.3} -> {}",
        if phish_score >= detector.threshold() {
            "PHISH"
        } else {
            "legitimate"
        }
    );

    let legit_url = &corpus.english_test()[1];
    let legit_visit = browser.visit(legit_url).expect("legit loads");
    let legit_score = detector.score(&extractor.extract(&legit_visit));
    println!("legit   {legit_url}");
    println!("        title {:?}", legit_visit.title);
    println!(
        "        confidence {legit_score:.3} -> {}",
        if legit_score >= detector.threshold() {
            "PHISH"
        } else {
            "legitimate"
        }
    );
}
