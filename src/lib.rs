#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Umbrella crate for the *Know Your Phish* (ICDCS 2016) reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single package:
//!
//! ```
//! use knowyourphish::url::Url;
//! let u = Url::parse("https://www.amazon.co.uk/ap/signin")?;
//! assert_eq!(u.mld(), Some("amazon"));
//! # Ok::<(), knowyourphish::url::ParseUrlError>(())
//! ```
//!
//! See the individual crates for details:
//! - [`url`]: URL decomposition (FQDN / RDN / mld / FreeURL)
//! - [`text`]: term extraction, term distributions, Hellinger distance
//! - [`html`]: HTML tokenizer and data-source extraction
//! - [`exec`]: deterministic parallel execution (scoped thread pool)
//! - [`web`]: simulated web, browser/scraper, OCR, domain ranking
//! - [`search`]: search-engine substrate used by target identification
//! - [`datagen`]: synthetic multilingual legitimate/phishing datasets
//! - [`ml`]: gradient boosting, metrics, cross-validation
//! - [`core`]: the paper's contribution — 212 features, detector, target
//!   identification, combined pipeline
//! - [`serve`]: deterministic online scoring service (admission control,
//!   micro-batching, verdict caching, latency accounting)
//! - [`cluster`]: deterministic multi-node serving simulation (consistent
//!   hashing, crash/recovery, failover, per-node backpressure)
//! - [`obs`]: deterministic observability (metrics registry, virtual-clock
//!   tracer, pipeline observer hooks)
//! - [`baselines`]: comparison systems for Table X
//! - [`lint`]: workspace determinism & invariant static analysis
//! - [`store`]: persistent columnar corpus & feature store (versioned,
//!   checksummed, streaming)
//!
//! The [`cli`] module holds the typed argument parser shared by every
//! `kyp` subcommand, and [`storeflow`] the generate-once/train-forever
//! pipelines that stream corpora through the [`store`] format.

pub mod cli;
pub mod storeflow;

pub use kyp_baselines as baselines;
pub use kyp_cluster as cluster;
pub use kyp_core as core;
pub use kyp_datagen as datagen;
pub use kyp_exec as exec;
pub use kyp_html as html;
pub use kyp_lint as lint;
pub use kyp_ml as ml;
pub use kyp_obs as obs;
pub use kyp_search as search;
pub use kyp_serve as serve;
pub use kyp_store as store;
pub use kyp_text as text;
pub use kyp_url as url;
pub use kyp_web as web;
