//! Shared typed command-line parsing for the `kyp` binary.
//!
//! Every subcommand declares the options it accepts as a static
//! [`CommandSpec`]; [`CommandSpec::parse`] then validates the raw argument
//! list against that declaration. The old per-subcommand ad-hoc loops
//! accepted any `--name value` pair and silently ignored typos — here an
//! unknown option, a missing value or a stray positional is a hard error
//! everywhere, and `--help` output is generated from the spec instead of
//! being hand-maintained per command.
//!
//! # Examples
//!
//! ```
//! use knowyourphish::cli::{ArgSpec, CommandSpec, Parsed};
//!
//! static SPEC: CommandSpec = CommandSpec {
//!     name: "demo",
//!     summary: "exercise the parser",
//!     positional: None,
//!     args: &[ArgSpec { name: "out", value: "<dir>", help: "output directory" }],
//! };
//!
//! let args = vec!["--out".to_string(), "x/".to_string()];
//! let Ok(Parsed::Opts(opts)) = SPEC.parse(&args) else { panic!() };
//! assert_eq!(opts.get("out"), Some("x/"));
//! assert!(SPEC.parse(&["--typo".to_string(), "v".to_string()]).is_err());
//! ```

use std::collections::HashMap;

/// One `--name <value>` option a subcommand accepts.
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    /// Option name without the leading `--`.
    pub name: &'static str,
    /// Value placeholder shown in help output, e.g. `<dir>`. An empty
    /// placeholder declares a boolean flag: `--name` takes no value and
    /// parses to `"true"` (query it with [`ParsedOpts::flag`]).
    pub value: &'static str,
    /// One-line description shown in help output.
    pub help: &'static str,
}

impl ArgSpec {
    /// `--name <value>` for options, `--name` for boolean flags.
    fn flag_label(&self) -> String {
        if self.value.is_empty() {
            format!("--{}", self.name)
        } else {
            format!("--{} {}", self.name, self.value)
        }
    }
}

/// A subcommand: its name, one-line summary, and accepted options.
#[derive(Debug, Clone, Copy)]
pub struct CommandSpec {
    /// Subcommand name as typed after `kyp`.
    pub name: &'static str,
    /// One-line summary shown in help output.
    pub summary: &'static str,
    /// An optional single positional argument (e.g. the store directory
    /// of `kyp store inspect <dir>`). Its parsed value is looked up by
    /// [`ArgSpec::name`] like any option; `None` keeps the historical
    /// behaviour where every bare argument is a hard error.
    pub positional: Option<&'static ArgSpec>,
    /// The options the subcommand accepts, in help order.
    pub args: &'static [ArgSpec],
}

/// Successful parse outcome.
#[derive(Debug)]
pub enum Parsed {
    /// The validated option map.
    Opts(ParsedOpts),
    /// `--help` was requested; print [`CommandSpec::help_text`] and exit.
    Help,
}

/// Validated `--name value` pairs for one subcommand invocation.
///
/// Lookup is by option name; a later duplicate of the same option wins,
/// matching common CLI convention (`kyp gen --seed 1 --seed 2` uses 2).
#[derive(Debug, Default, Clone)]
pub struct ParsedOpts {
    values: HashMap<String, String>,
}

impl ParsedOpts {
    /// The value of `key`, if the option was given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// `true` when the boolean flag `key` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// The value of a required option, or an actionable error.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parses an optional option value, falling back to `default`.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        self.get(key).map_or(Ok(default), |s| {
            s.parse().map_err(|_| format!("invalid --{key} {s:?}"))
        })
    }

    /// Number of options given.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no options were given.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl CommandSpec {
    /// Validates `args` (everything after the subcommand name) against
    /// this spec.
    ///
    /// # Errors
    ///
    /// - a positional or single-dash argument when the spec declares no
    ///   positional (or it was already given): options take the form
    ///   `--name <value>`,
    /// - an option not declared in [`CommandSpec::args`],
    /// - a declared option with no following value.
    pub fn parse(&self, args: &[String]) -> Result<Parsed, String> {
        let mut values = HashMap::new();
        let mut iter = args.iter();
        while let Some(a) = iter.next() {
            let Some(key) = a.strip_prefix("--") else {
                if let Some(p) = self.positional {
                    if values.contains_key(p.name) {
                        return Err(format!(
                            "unexpected argument {a:?} (the {} positional was already given)",
                            p.value
                        ));
                    }
                    values.insert(p.name.to_owned(), a.clone());
                    continue;
                }
                return Err(format!(
                    "unexpected argument {a:?} (options take the form --name <value>)"
                ));
            };
            if key == "help" {
                return Ok(Parsed::Help);
            }
            let Some(spec) = self.args.iter().find(|s| s.name == key) else {
                return Err(format!(
                    "unknown option --{key} for `kyp {}` (run `kyp {} --help` for its options)",
                    self.name, self.name
                ));
            };
            if spec.value.is_empty() {
                values.insert(key.to_owned(), "true".to_owned());
                continue;
            }
            let Some(value) = iter.next() else {
                return Err(format!(
                    "option --{key} is missing a value (expected --{key} <value>)"
                ));
            };
            values.insert(key.to_owned(), value.clone());
        }
        Ok(Parsed::Opts(ParsedOpts { values }))
    }

    /// The autogenerated `--help` text for this subcommand.
    pub fn help_text(&self) -> String {
        let mut out = format!(
            "kyp {} — {}\n\nUSAGE:\n  kyp {}",
            self.name, self.summary, self.name
        );
        if let Some(p) = self.positional {
            out.push_str(&format!(" {}", p.value));
        }
        out.push_str(" [options]\n");
        if let Some(p) = self.positional {
            out.push_str(&format!("\nARGS:\n  {}   {}\n", p.value, p.help));
        }
        out.push_str("\nOPTIONS:\n");
        let width = self
            .args
            .iter()
            .map(|a| a.flag_label().len())
            .max()
            .unwrap_or(0);
        // Pad to the widest flag plus a 3-space gutter.
        let width = width.max("--help".len());
        for a in self.args {
            let flag = a.flag_label();
            out.push_str(&format!("  {flag:width$}   {}\n", a.help));
        }
        out.push_str(&format!("  {:width$}   this message\n", "--help"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static SPEC: CommandSpec = CommandSpec {
        name: "probe",
        summary: "spec used by the parser tests",
        positional: None,
        args: &[
            ArgSpec {
                name: "data",
                value: "<dir>",
                help: "input directory",
            },
            ArgSpec {
                name: "out",
                value: "<path>",
                help: "output path",
            },
            ArgSpec {
                name: "seed",
                value: "<n>",
                help: "rng seed",
            },
            ArgSpec {
                name: "threads",
                value: "<n>",
                help: "thread pool size",
            },
        ],
    };

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    fn parse_ok(list: &[&str]) -> ParsedOpts {
        match SPEC.parse(&args(list)) {
            Ok(Parsed::Opts(opts)) => opts,
            other => panic!("expected options, got {other:?}"),
        }
    }

    #[test]
    fn parses_flag_value_pairs() {
        let opts = parse_ok(&["--data", "corpus/", "--threads", "4"]);
        assert_eq!(opts.get("data"), Some("corpus/"));
        assert_eq!(opts.get("threads"), Some("4"));
        assert_eq!(opts.len(), 2);
    }

    #[test]
    fn empty_args_parse_to_empty_opts() {
        assert!(parse_ok(&[]).is_empty());
    }

    #[test]
    fn trailing_flag_without_value_is_an_error() {
        let err = SPEC
            .parse(&args(&["--data", "corpus/", "--out"]))
            .unwrap_err();
        assert!(err.contains("--out"), "{err}");
        assert!(err.contains("missing a value"), "{err}");
        assert!(err.contains("--out <value>"), "names the fix: {err}");
    }

    #[test]
    fn stray_positional_argument_is_an_error() {
        let err = SPEC.parse(&args(&["corpus/", "--out", "x"])).unwrap_err();
        assert!(err.contains("corpus/"), "{err}");
        assert!(err.contains("--name <value>"), "names the form: {err}");
    }

    #[test]
    fn single_dash_options_are_rejected() {
        let err = SPEC.parse(&args(&["-o", "x"])).unwrap_err();
        assert!(err.contains("\"-o\""), "{err}");
    }

    #[test]
    fn later_duplicate_wins() {
        let opts = parse_ok(&["--seed", "1", "--seed", "2"]);
        assert_eq!(opts.get("seed"), Some("2"));
    }

    #[test]
    fn unknown_option_is_a_hard_error() {
        let err = SPEC.parse(&args(&["--bogus", "1"])).unwrap_err();
        assert!(err.contains("unknown option --bogus"), "{err}");
        assert!(err.contains("`kyp probe`"), "names the command: {err}");
        assert!(err.contains("--help"), "points at help: {err}");
    }

    #[test]
    fn help_flag_short_circuits_validation() {
        // --help wins even when the rest of the line would be invalid.
        assert!(matches!(SPEC.parse(&args(&["--help"])), Ok(Parsed::Help)));
        assert!(matches!(
            SPEC.parse(&args(&["--data", "d/", "--help", "--bogus", "x"])),
            Ok(Parsed::Help)
        ));
    }

    #[test]
    fn help_text_lists_every_option() {
        let help = SPEC.help_text();
        assert!(help.starts_with("kyp probe — spec used by the parser tests"));
        for a in SPEC.args {
            assert!(
                help.contains(&format!("--{} {}", a.name, a.value)),
                "{help}"
            );
            assert!(help.contains(a.help), "{help}");
        }
        assert!(help.contains("--help"), "{help}");
    }

    static FLAG_SPEC: CommandSpec = CommandSpec {
        name: "flagged",
        summary: "spec with a boolean flag, used by the parser tests",
        positional: None,
        args: &[
            ArgSpec {
                name: "strict",
                value: "",
                help: "boolean flag: takes no value",
            },
            ArgSpec {
                name: "out",
                value: "<path>",
                help: "output path",
            },
        ],
    };

    #[test]
    fn boolean_flag_takes_no_value() {
        // The flag must not swallow the next token.
        let opts = match FLAG_SPEC.parse(&args(&["--strict", "--out", "x"])) {
            Ok(Parsed::Opts(opts)) => opts,
            other => panic!("expected options, got {other:?}"),
        };
        assert!(opts.flag("strict"));
        assert_eq!(opts.get("out"), Some("x"));
        let opts = match FLAG_SPEC.parse(&args(&["--out", "x"])) {
            Ok(Parsed::Opts(opts)) => opts,
            other => panic!("expected options, got {other:?}"),
        };
        assert!(!opts.flag("strict"));
    }

    #[test]
    fn boolean_flag_help_renders_without_placeholder() {
        let help = FLAG_SPEC.help_text();
        assert!(help.contains("--strict "), "{help}");
        assert!(!help.contains("--strict <"), "{help}");
        assert!(help.contains("--out <path>"), "{help}");
    }

    static POSITIONAL_SPEC: CommandSpec = CommandSpec {
        name: "inspect",
        summary: "spec with a positional, used by the parser tests",
        positional: Some(&ArgSpec {
            name: "dir",
            value: "<dir>",
            help: "store directory to inspect",
        }),
        args: &[ArgSpec {
            name: "threads",
            value: "<n>",
            help: "thread pool size",
        }],
    };

    #[test]
    fn positional_is_captured_under_its_name() {
        let opts = match POSITIONAL_SPEC.parse(&args(&["store/", "--threads", "2"])) {
            Ok(Parsed::Opts(opts)) => opts,
            other => panic!("expected options, got {other:?}"),
        };
        assert_eq!(opts.get("dir"), Some("store/"));
        assert_eq!(opts.get("threads"), Some("2"));
        // Order doesn't matter: options may precede the positional.
        let opts = match POSITIONAL_SPEC.parse(&args(&["--threads", "2", "store/"])) {
            Ok(Parsed::Opts(opts)) => opts,
            other => panic!("expected options, got {other:?}"),
        };
        assert_eq!(opts.get("dir"), Some("store/"));
    }

    #[test]
    fn second_positional_is_an_error() {
        let err = POSITIONAL_SPEC
            .parse(&args(&["store/", "extra/"]))
            .unwrap_err();
        assert!(err.contains("extra/"), "{err}");
        assert!(err.contains("already given"), "{err}");
    }

    #[test]
    fn positional_help_text_renders_args_section() {
        let help = POSITIONAL_SPEC.help_text();
        assert!(help.contains("kyp inspect <dir> [options]"), "{help}");
        assert!(help.contains("ARGS:"), "{help}");
        assert!(help.contains("store directory to inspect"), "{help}");
    }

    #[test]
    fn require_and_num_report_actionable_errors() {
        let opts = parse_ok(&["--seed", "7", "--out", "x"]);
        assert_eq!(opts.require("out").unwrap(), "x");
        assert_eq!(opts.num("seed", 0u64).unwrap(), 7);
        assert_eq!(opts.num("threads", 3usize).unwrap(), 3, "default applies");
        let err = opts.require("data").unwrap_err();
        assert!(err.contains("--data"), "{err}");
        let opts = parse_ok(&["--seed", "zebra"]);
        let err = opts.num("seed", 0u64).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
        assert!(err.contains("zebra"), "{err}");
    }
}
