//! The generate-once/train-forever pipeline over a store directory.
//!
//! This module is the seam between corpus generation and the persistent
//! [`kyp_store`] format, shared by the `kyp` CLI, the determinism tests
//! and the `exp_store_throughput` benchmark so all three stream the
//! exact same bytes:
//!
//! - [`build_store`] scrapes a generated [`Corpus`] bundle by bundle
//!   and streams both the visited pages *and* their extracted feature
//!   rows to disk in bounded memory (one block at a time);
//! - [`load_split_dataset`] streams feature blocks back into the
//!   legit-rows-then-phish-rows [`Dataset`] layout `kyp train` has
//!   always used, so a store-trained model is byte-identical to a
//!   jsonl-trained one;
//! - [`score_split_streaming`] pushes feature blocks through the
//!   compiled flat model without ever materialising the full matrix;
//! - [`store_verdict_lines`] classifies every stored page and renders
//!   the deterministic verdict stream (scores as exact bit patterns)
//!   that CI byte-compares across thread counts and against the
//!   in-memory pipeline;
//! - [`load_serving_pages`] rebuilds the `kyp serve` / `kyp cluster`
//!   page source from a store directory.

use crate::core::features::FEATURE_COUNT;
use crate::core::{ClassifiedPage, FeatureExtractor, PhishDetector, Pipeline, ScrapeReport};
use crate::datagen::{CampaignConfig, Corpus};
use crate::ml::Dataset;
use crate::serve::StoredPages;
use crate::web::{Browser, ResilientBrowser, ScrapedPage, SourceAvailability, VisitedPage, World};
use kyp_store::{
    features_path, pages_path, validate_pair, FeatureStoreReader, FeatureStoreWriter, FrameReader,
    PageStoreReader, PageStoreWriter, StoreHeader, StoreKind, WorldStamp, BLOCK_RECORDS,
};
use serde::{Deserialize, Serialize};
use std::fs;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::path::Path;

/// One searchable page of the legitimate index (`index.jsonl`) — the
/// persisted form of what a crawler would store about a site.
#[derive(Debug, Serialize, Deserialize)]
pub struct IndexEntry {
    /// Registered domain of the landing URL.
    pub rdn: String,
    /// Main level domain of the landing URL.
    pub mld: String,
    /// Title and body text, the engine's indexable content.
    pub text: String,
}

/// The [`WorldStamp`] describing a generation run: the campaign sizes
/// and seed plus the fault-injection parameters of the scrape.
pub fn world_stamp(config: &CampaignConfig, fault_rate: f64, fault_seed: u64) -> WorldStamp {
    WorldStamp {
        seed: config.seed,
        phish_train: config.phish_train,
        phish_test: config.phish_test,
        phish_brand: config.phish_brand,
        leg_train: config.leg_train,
        english_test: config.english_test,
        other_language_test: config.other_language_test,
        fault_rate,
        fault_seed,
    }
}

/// What [`build_store`] wrote.
#[derive(Debug)]
pub struct StoreBuildReport {
    /// Pages persisted across all bundles.
    pub pages: u64,
    /// Feature rows persisted (equals `pages`).
    pub rows: u64,
    /// Bytes of the page store file.
    pub page_bytes: u64,
    /// Bytes of the feature store file.
    pub feature_bytes: u64,
    /// Pages persisted per bundle, in bundle order.
    pub bundle_pages: Vec<(String, u64)>,
    /// Scrape accounting (attempts, failures, retries, breaker trips).
    pub scrape: ScrapeReport,
}

type PageWriter = PageStoreWriter<BufWriter<File>>;
type FeatureWriter = FeatureStoreWriter<BufWriter<File>>;

/// Scrapes one buffered chunk into both store files and clears it.
fn flush_chunk(
    extractor: &FeatureExtractor,
    page_writer: &mut PageWriter,
    feature_writer: &mut FeatureWriter,
    bundle: u32,
    is_phish: bool,
    chunk: &mut Vec<VisitedPage>,
) -> Result<(), String> {
    if chunk.is_empty() {
        return Ok(());
    }
    for page in chunk.iter() {
        page_writer
            .append(page)
            .map_err(|e| format!("write page store: {e}"))?;
    }
    let flat = extractor.extract_batch_flat(chunk);
    let labels = vec![is_phish; chunk.len()];
    feature_writer
        .append_rows(bundle, &flat, &labels)
        .map_err(|e| format!("write feature store: {e}"))?;
    chunk.clear();
    Ok(())
}

/// Streams a generated corpus into `dir`: scrapes every bundle through
/// a resilient browser over `world` (in the same bundle and URL order
/// as the jsonl pipeline, so the captured page sequence is identical),
/// persisting pages and extracted feature rows one block at a time.
///
/// Also writes the corpus sidecars (`ranker.json`, `index.jsonl`) so a
/// store directory is self-sufficient for train/eval/scan/serve.
///
/// # Errors
///
/// Filesystem and store-format failures, rendered as strings for the
/// CLI.
pub fn build_store<W: World>(
    dir: &Path,
    corpus: &Corpus,
    config: &CampaignConfig,
    world: &W,
    fault_rate: f64,
    fault_seed: u64,
) -> Result<StoreBuildReport, String> {
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let bundles = corpus.scrape_bundles();
    let names: Vec<String> = bundles.iter().map(|(n, _, _)| (*n).to_string()).collect();
    let stamp = world_stamp(config, fault_rate, fault_seed);
    let pages_header = StoreHeader {
        kind: StoreKind::Pages,
        stamp: stamp.clone(),
        n_features: 0,
        bundles: names.clone(),
        block_records: BLOCK_RECORDS as u32,
    };
    let features_header = StoreHeader {
        kind: StoreKind::Features,
        stamp,
        n_features: FEATURE_COUNT as u32,
        bundles: names,
        block_records: BLOCK_RECORDS as u32,
    };
    let mut page_writer = PageStoreWriter::create(&pages_path(dir), &pages_header)
        .map_err(|e| format!("create page store: {e}"))?;
    let mut feature_writer = FeatureStoreWriter::create(&features_path(dir), &features_header)
        .map_err(|e| format!("create feature store: {e}"))?;

    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let mut scraper = ResilientBrowser::new(world);
    let mut report = ScrapeReport::default();
    let mut bundle_pages = Vec::with_capacity(bundles.len());
    let mut chunk: Vec<VisitedPage> = Vec::with_capacity(BLOCK_RECORDS);
    for (bundle_id, (name, urls, is_phish)) in bundles.iter().enumerate() {
        let mut captured = 0u64;
        for url in urls {
            report.requested += 1;
            match scraper.scrape(url) {
                Ok(scraped) => {
                    report.completed += 1;
                    if scraped.availability.is_degraded() {
                        report.degraded += 1;
                    }
                    captured += 1;
                    chunk.push(scraped.visit);
                    if chunk.len() >= BLOCK_RECORDS {
                        flush_chunk(
                            &extractor,
                            &mut page_writer,
                            &mut feature_writer,
                            bundle_id as u32,
                            *is_phish,
                            &mut chunk,
                        )?;
                    }
                }
                Err(failure) => {
                    report.failed += 1;
                    report.count_cause(failure.cause);
                }
            }
        }
        // Bundle boundary: a block never spans bundles.
        flush_chunk(
            &extractor,
            &mut page_writer,
            &mut feature_writer,
            bundle_id as u32,
            *is_phish,
            &mut chunk,
        )?;
        bundle_pages.push(((*name).to_string(), captured));
    }
    report.retries = scraper.total_retries();
    report.breaker_trips = scraper.breaker().trips();
    report.virtual_elapsed_ms = scraper.clock().now_ms();

    let (_, pages_written, page_bytes) = page_writer
        .finish()
        .map_err(|e| format!("finish page store: {e}"))?;
    let (_, rows_written, feature_bytes) = feature_writer
        .finish()
        .map_err(|e| format!("finish feature store: {e}"))?;
    write_corpus_sidecars(dir, corpus)?;
    Ok(StoreBuildReport {
        pages: pages_written,
        rows: rows_written,
        page_bytes,
        feature_bytes,
        bundle_pages,
        scrape: report,
    })
}

/// Writes the non-page corpus artifacts a scoring stack needs next to
/// the scraped data: the offline popularity ranking (`ranker.json`) and
/// the search-engine index over the legitimate corpus (`index.jsonl`).
///
/// # Errors
///
/// Serialization and filesystem failures, rendered as strings.
pub fn write_corpus_sidecars(dir: &Path, corpus: &Corpus) -> Result<(), String> {
    let ranker_json = serde_json::to_string(&corpus.ranker).map_err(|e| e.to_string())?;
    fs::write(dir.join("ranker.json"), ranker_json).map_err(|e| e.to_string())?;

    // Re-derive index entries from the legitimate sites the engine
    // knows. (The campaign indexes each site's crawlable text; we
    // persist what a crawler would store.)
    let browser = Browser::new(&corpus.world);
    let mut index_file = fs::File::create(dir.join("index.jsonl")).map_err(|e| e.to_string())?;
    for url in corpus.leg_train.iter().chain(corpus.english_test()) {
        if let Ok(visit) = browser.visit(url) {
            if let (Some(rdn), Some(mld)) = (visit.landing_url.rdn(), visit.landing_url.mld()) {
                let entry = IndexEntry {
                    rdn,
                    mld: mld.to_owned(),
                    text: format!("{} {}", visit.title, visit.text),
                };
                let line = serde_json::to_string(&entry).map_err(|e| e.to_string())?;
                writeln!(index_file, "{line}").map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(())
}

/// Opens the feature stream of a store directory, hard-failing unless
/// the pages and features headers stamp the same generated world.
///
/// # Errors
///
/// Every store-format error (missing files, bad magic, version or kind
/// mismatch, checksum failure, stamp mismatch), rendered as strings.
pub fn open_feature_stream(dir: &Path) -> Result<FeatureStoreReader<BufReader<File>>, String> {
    let pages = FrameReader::open(&pages_path(dir), StoreKind::Pages)
        .map_err(|e| format!("open {}: {e}", pages_path(dir).display()))?;
    let features = FeatureStoreReader::open(&features_path(dir))
        .map_err(|e| format!("open {}: {e}", features_path(dir).display()))?;
    validate_pair(pages.header(), features.header()).map_err(|e| e.to_string())?;
    Ok(features)
}

fn bundle_ids(
    header: &StoreHeader,
    legit_bundle: &str,
    phish_bundle: &str,
) -> Result<(u32, u32), String> {
    let legit = header.bundle_id(legit_bundle).ok_or_else(|| {
        format!(
            "store has no bundle {legit_bundle:?} (it holds {:?})",
            header.bundles
        )
    })?;
    let phish = header.bundle_id(phish_bundle).ok_or_else(|| {
        format!(
            "store has no bundle {phish_bundle:?} (it holds {:?})",
            header.bundles
        )
    })?;
    Ok((legit, phish))
}

/// Streams the feature rows of two bundles into the canonical training
/// layout — every legitimate row, then every phishing row, each side in
/// stored (generation) order. This is exactly the row order the jsonl
/// `featurize` path produces, so models trained from either source are
/// byte-identical.
///
/// # Errors
///
/// Store-format failures and unknown bundle names.
pub fn load_split_dataset(
    dir: &Path,
    legit_bundle: &str,
    phish_bundle: &str,
) -> Result<Dataset, String> {
    let mut reader = open_feature_stream(dir)?;
    let (legit_id, phish_id) = bundle_ids(reader.header(), legit_bundle, phish_bundle)?;
    let n_features = reader.n_features();
    let mut legit = Dataset::new(n_features);
    let mut phish = Dataset::new(n_features);
    while let Some(block) = reader
        .next_block()
        .map_err(|e| format!("read feature store: {e}"))?
    {
        if block.bundle == legit_id {
            legit.push_flat_rows(&block.rows, &block.labels);
        } else if block.bundle == phish_id {
            phish.push_flat_rows(&block.rows, &block.labels);
        }
    }
    if legit.is_empty() && phish.is_empty() {
        return Err(format!(
            "store holds no rows for bundles {legit_bundle:?} / {phish_bundle:?}"
        ));
    }
    legit.append(&phish);
    Ok(legit)
}

/// Streams two bundles' starting URLs back out of a store directory as
/// `(legitimate, phishing)` lists for URL-stage cascade training.
///
/// The page store does not record bundles, and its blocks re-buffer
/// across bundle boundaries — but both files persist the same records
/// in the same generation order ([`build_store`] appends each scraped
/// page to both writers). The feature stream therefore yields a bundle
/// id per record *position*, which labels the page at the same global
/// index.
///
/// # Errors
///
/// Store-format failures, unknown bundle names, and stores whose page
/// and feature files disagree on their record count.
pub fn load_split_urls(
    dir: &Path,
    legit_bundle: &str,
    phish_bundle: &str,
) -> Result<(Vec<String>, Vec<String>), String> {
    let mut features = open_feature_stream(dir)?;
    let (legit_id, phish_id) = bundle_ids(features.header(), legit_bundle, phish_bundle)?;
    let mut record_bundles: Vec<u32> = Vec::new();
    while let Some(block) = features
        .next_block()
        .map_err(|e| format!("read feature store: {e}"))?
    {
        record_bundles.resize(record_bundles.len() + block.labels.len(), block.bundle);
    }
    let path = pages_path(dir);
    let mut pages =
        PageStoreReader::open(&path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut legit = Vec::new();
    let mut phish = Vec::new();
    let mut index = 0usize;
    while let Some(block) = pages
        .next_block()
        .map_err(|e| format!("read page store: {e}"))?
    {
        for page in block {
            let Some(&bundle) = record_bundles.get(index) else {
                return Err(
                    "page store holds more records than the feature store; regenerate the store"
                        .to_owned(),
                );
            };
            index += 1;
            if bundle == legit_id {
                legit.push(page.starting_url.to_string());
            } else if bundle == phish_id {
                phish.push(page.starting_url.to_string());
            }
        }
    }
    if index != record_bundles.len() {
        return Err(format!(
            "page store holds {index} records but the feature store holds {}; \
             regenerate the store",
            record_bundles.len()
        ));
    }
    Ok((legit, phish))
}

/// Streams two bundles' feature blocks through the compiled flat model
/// without materialising the matrix, returning `(scores, labels)` in
/// the same legit-then-phish order as [`load_split_dataset`].
///
/// # Errors
///
/// Store-format failures and unknown bundle names.
pub fn score_split_streaming(
    dir: &Path,
    detector: &PhishDetector,
    legit_bundle: &str,
    phish_bundle: &str,
) -> Result<(Vec<f64>, Vec<bool>), String> {
    let mut reader = open_feature_stream(dir)?;
    let (legit_id, phish_id) = bundle_ids(reader.header(), legit_bundle, phish_bundle)?;
    let n_features = reader.n_features();
    let mut legit: (Vec<f64>, Vec<bool>) = (Vec::new(), Vec::new());
    let mut phish: (Vec<f64>, Vec<bool>) = (Vec::new(), Vec::new());
    while let Some(block) = reader
        .next_block()
        .map_err(|e| format!("read feature store: {e}"))?
    {
        let side = if block.bundle == legit_id {
            &mut legit
        } else if block.bundle == phish_id {
            &mut phish
        } else {
            continue;
        };
        let rows: Vec<&[f64]> = block.rows.chunks(n_features).collect();
        side.0.extend(detector.score_batch(&rows));
        side.1.extend_from_slice(&block.labels);
    }
    let (mut scores, mut labels) = legit;
    scores.extend(phish.0);
    labels.extend(phish.1);
    Ok((scores, labels))
}

/// Renders one classified page as a deterministic verdict line: scores
/// as exact IEEE-754 bit patterns, so equal lines mean bit-equal
/// classifications and `cmp` on the whole stream is meaningful.
pub fn verdict_line(page: &ClassifiedPage) -> String {
    render_verdict_line(
        &page.url,
        &page.verdict,
        page.degraded,
        crate::core::VerdictStage::Full,
    )
}

/// The shared line renderer behind [`verdict_line`]: the stage tag is
/// appended only when it differs from [`VerdictStage::Full`], so every
/// pre-cascade stream keeps its exact bytes.
///
/// [`VerdictStage::Full`]: crate::core::VerdictStage::Full
fn render_verdict_line(
    url: &str,
    verdict: &crate::core::PipelineVerdict,
    degraded: bool,
    stage: crate::core::VerdictStage,
) -> String {
    use crate::core::PipelineVerdict;
    let (kind, score, extra) = match verdict {
        PipelineVerdict::Legitimate { score } => ("legitimate", *score, String::new()),
        PipelineVerdict::ConfirmedLegitimate { score, step } => {
            ("confirmed-legitimate", *score, format!(" step={step}"))
        }
        PipelineVerdict::Phish { score, candidates } => {
            let targets: Vec<&str> = candidates.iter().map(|c| c.mld.as_str()).collect();
            ("phish", *score, format!(" targets={}", targets.join(",")))
        }
        PipelineVerdict::Suspicious { score } => ("suspicious", *score, String::new()),
    };
    let mut line = format!(
        "{url}\t{kind}{extra} score_bits={:016x} degraded={degraded}",
        score.to_bits(),
    );
    if stage != crate::core::VerdictStage::Full {
        line.push_str(" stage=");
        line.push_str(stage.name());
    }
    line
}

/// Classifies every stored page block by block (scraping nothing) and
/// returns the verdict stream in stored order. Byte-identical at any
/// thread count, and to the same classification run over the in-memory
/// pipeline.
///
/// # Errors
///
/// Store-format failures, rendered as strings.
pub fn store_verdict_lines(dir: &Path, pipeline: &Pipeline) -> Result<Vec<String>, String> {
    let path = pages_path(dir);
    let mut reader =
        PageStoreReader::open(&path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut lines = Vec::new();
    while let Some(block) = reader
        .next_block()
        .map_err(|e| format!("read page store: {e}"))?
    {
        let batch: Vec<(String, ScrapedPage)> = block
            .into_iter()
            .map(|visit| {
                let url = visit.starting_url.to_string();
                let scraped = ScrapedPage {
                    visit,
                    availability: SourceAvailability::FULL,
                    attempts: 1,
                    elapsed_ms: 0,
                };
                (url, scraped)
            })
            .collect();
        for page in pipeline.classify_scraped(&batch) {
            lines.push(verdict_line(&page));
        }
    }
    Ok(lines)
}

/// Like [`store_verdict_lines`], with the URL-only cascade pre-filter in
/// front: pages whose starting URL scores outside the uncertainty band
/// never run the full pipeline, and their lines carry a
/// ` stage=url_only` tag. With [`CascadeBand::FORCED_FULL`] every page
/// falls through and the stream is byte-identical to
/// [`store_verdict_lines`] — the equivalence CI proves with `cmp`.
///
/// [`CascadeBand::FORCED_FULL`]: crate::core::CascadeBand::FORCED_FULL
///
/// # Errors
///
/// Store-format failures, rendered as strings.
pub fn store_verdict_lines_cascade(
    dir: &Path,
    pipeline: &Pipeline,
    cascade: &crate::core::CascadeClassifier,
) -> Result<(Vec<String>, crate::serve::CascadeCounters), String> {
    use crate::core::CascadeDecision;
    let path = pages_path(dir);
    let mut reader =
        PageStoreReader::open(&path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut lines = Vec::new();
    let mut counters = crate::serve::CascadeCounters::default();
    while let Some(block) = reader
        .next_block()
        .map_err(|e| format!("read page store: {e}"))?
    {
        // Per page: either a finished URL-stage line, or an index into
        // the block's full-classification batch (stored order preserved).
        enum Line {
            Done(String),
            Pending(usize),
        }
        let mut slots = Vec::with_capacity(block.len());
        let mut batch: Vec<(String, ScrapedPage)> = Vec::new();
        for visit in block {
            let url = visit.starting_url.to_string();
            counters.screened += 1;
            match cascade.prescreen(&url) {
                CascadeDecision::Final(v) => {
                    counters.url_only += 1;
                    slots.push(Line::Done(render_verdict_line(
                        &url, &v.verdict, false, v.stage,
                    )));
                    continue;
                }
                CascadeDecision::Uncertain { .. } => counters.fallthrough += 1,
                CascadeDecision::Unscorable => counters.unscorable += 1,
            }
            slots.push(Line::Pending(batch.len()));
            batch.push((
                url,
                ScrapedPage {
                    visit,
                    availability: SourceAvailability::FULL,
                    attempts: 1,
                    elapsed_ms: 0,
                },
            ));
        }
        let classified = pipeline.classify_scraped(&batch);
        for slot in slots {
            match slot {
                Line::Done(line) => lines.push(line),
                Line::Pending(idx) => lines.push(verdict_line(&classified[idx])),
            }
        }
    }
    Ok((lines, counters))
}

/// Rebuilds the serving page source from a store directory: the same
/// [`StoredPages`] map and request-pool URL list (in stored order) that
/// the jsonl bundles produce.
///
/// # Errors
///
/// Store-format failures, rendered as strings.
pub fn load_serving_pages(dir: &Path) -> Result<(StoredPages, Vec<String>), String> {
    let path = pages_path(dir);
    let reader =
        PageStoreReader::open(&path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let pages = reader
        .read_all()
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    if pages.is_empty() {
        return Err(format!(
            "store at {} holds no pages (run `kyp gen --store` first)",
            dir.display()
        ));
    }
    let urls: Vec<String> = pages.iter().map(|p| p.starting_url.to_string()).collect();
    Ok((StoredPages::new(pages), urls))
}
