//! `kyp` — command-line workflow for the Know Your Phish reproduction.
//!
//! Operates on the paper's json interchange format: scraped pages are
//! [`VisitedPage`] json (one per line in `.jsonl` files), the trained
//! model is a self-contained json bundle.
//!
//! ```console
//! $ kyp gen   --scale 0.02 --out data/           # synthesise + scrape a corpus
//! $ kyp train --data data/ --out model.json      # train the detector
//! $ kyp eval  --data data/ --model model.json    # Table VI-style metrics
//! $ kyp scan  --model model.json --data data/ --page data/sample_phish.json
//! $ kyp serve --model model.json --data data/ --requests 1000
//! ```
//!
//! Every subcommand is declared as a [`CommandSpec`]; argument validation
//! and per-subcommand `--help` come from the shared parser in
//! [`knowyourphish::cli`], so an unknown or valueless option is a hard
//! error everywhere.

use knowyourphish::cli::{ArgSpec, CommandSpec, Parsed, ParsedOpts};
use knowyourphish::cluster::{verdict_stream, ClusterConfig, ClusterService, CrashPlan};
use knowyourphish::core::{
    CascadeBand, CascadeClassifier, CascadeDecision, DetectorConfig, FeatureExtractor,
    ModelSnapshot, PhishDetector, Pipeline, PipelineVerdict, ScrapeReport, TargetIdentifier,
};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::{metrics, Dataset};
use knowyourphish::obs::{CascadeOutcome, ObsSink, PipelineObserver};
use knowyourphish::search::SearchEngine;
use knowyourphish::serve::{
    generate, ArrivalPattern, BatchPolicy, CacheConfig, ScoringService, ServeConfig, ServeRequest,
    StoredPages, WorkloadConfig,
};
use knowyourphish::storeflow::{self, IndexEntry};
use knowyourphish::web::{
    Browser, DomainRanker, FaultPlan, FlakyWorld, ResilientBrowser, SourceAvailability,
    VisitedPage, World,
};
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

const THREADS_ARG: ArgSpec = ArgSpec {
    name: "threads",
    value: "<n>",
    help:
        "parallel pool size (default: KYP_THREADS or auto); results are bit-identical at any count",
};

const METRICS_ARG: ArgSpec = ArgSpec {
    name: "metrics",
    value: "<path>",
    help: "write the observability metrics registry as json",
};

const TRACE_ARG: ArgSpec = ArgSpec {
    name: "trace",
    value: "<path>",
    help: "write the span/event trace as newline-delimited json",
};

const CASCADE_ARG: ArgSpec = ArgSpec {
    name: "cascade",
    value: "<model.json>",
    help:
        "URL-only pre-filter snapshot (`kyp cascade-train`); confident URLs skip the full pipeline",
};

const CASCADE_BAND_ARG: ArgSpec = ArgSpec {
    name: "cascade-band",
    value: "<lo,hi>",
    help: "cascade uncertainty band in [0,1] (default 0.15,0.85; `0,1` forces every page full)",
};

/// Every `kyp` subcommand, with the full set of options it accepts.
const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "gen",
        summary: "synthesise a corpus and scrape it into jsonl bundles and/or a columnar store",
        positional: None,
        args: &[
            ArgSpec {
                name: "out",
                value: "<dir>",
                help: "jsonl output directory (this, --store, or both)",
            },
            ArgSpec {
                name: "store",
                value: "<dir>",
                help: "also/instead stream pages + features into a columnar store directory",
            },
            ArgSpec {
                name: "scale",
                value: "<f>",
                help: "corpus scale factor (default 0.02)",
            },
            ArgSpec {
                name: "seed",
                value: "<n>",
                help: "campaign rng seed",
            },
            ArgSpec {
                name: "fault-rate",
                value: "<f>",
                help: "scrape through an unreliable web at this fault rate",
            },
            ArgSpec {
                name: "fault-seed",
                value: "<n>",
                help: "fault plan seed (default: the campaign seed)",
            },
            THREADS_ARG,
        ],
    },
    CommandSpec {
        name: "train",
        summary: "train the detector from the jsonl bundles or a feature store",
        positional: None,
        args: &[
            ArgSpec {
                name: "data",
                value: "<dir>",
                help: "`kyp gen` jsonl directory (this or --from-store)",
            },
            ArgSpec {
                name: "from-store",
                value: "<dir>",
                help: "stream training rows from a `kyp gen --store` directory (no re-extraction)",
            },
            ArgSpec {
                name: "out",
                value: "<model.json>",
                help: "model snapshot path (required)",
            },
            THREADS_ARG,
        ],
    },
    CommandSpec {
        name: "cascade-train",
        summary: "train the URL-only cascade pre-filter from the training URLs",
        positional: None,
        args: &[
            ArgSpec {
                name: "data",
                value: "<dir>",
                help: "`kyp gen` jsonl directory (this or --from-store)",
            },
            ArgSpec {
                name: "from-store",
                value: "<dir>",
                help: "read the training URLs from a `kyp gen --store` directory instead",
            },
            ArgSpec {
                name: "out",
                value: "<model.json>",
                help: "URL-stage snapshot path (required)",
            },
            THREADS_ARG,
        ],
    },
    CommandSpec {
        name: "eval",
        summary: "Table VI-style metrics on the held-out test bundles",
        positional: None,
        args: &[
            ArgSpec {
                name: "data",
                value: "<dir>",
                help: "`kyp gen` jsonl directory (this or --from-store)",
            },
            ArgSpec {
                name: "from-store",
                value: "<dir>",
                help: "stream test rows from a `kyp gen --store` directory (no re-extraction)",
            },
            ArgSpec {
                name: "model",
                value: "<model.json>",
                help: "trained model snapshot (required)",
            },
            THREADS_ARG,
        ],
    },
    CommandSpec {
        name: "scan",
        summary: "classify one scraped page — or every stored page — and identify targets",
        positional: None,
        args: &[
            ArgSpec {
                name: "model",
                value: "<model.json>",
                help: "trained model snapshot (required)",
            },
            ArgSpec {
                name: "data",
                value: "<dir>",
                help: "`kyp gen` output directory (required unless --from-store)",
            },
            ArgSpec {
                name: "page",
                value: "<page.json>",
                help: "scraped page to classify (required unless --from-store)",
            },
            ArgSpec {
                name: "from-store",
                value: "<dir>",
                help: "classify every page of a `kyp gen --store` directory instead",
            },
            ArgSpec {
                name: "verdicts",
                value: "<path>",
                help: "with --from-store: write the verdict stream here instead of stdout",
            },
            CASCADE_ARG,
            CASCADE_BAND_ARG,
            METRICS_ARG,
            TRACE_ARG,
            THREADS_ARG,
        ],
    },
    CommandSpec {
        name: "serve",
        summary: "online scoring service over the captured corpus",
        positional: None,
        args: &[
            ArgSpec {
                name: "model",
                value: "<model.json>",
                help: "trained model snapshot (required)",
            },
            ArgSpec {
                name: "data",
                value: "<dir>",
                help: "`kyp gen` jsonl directory (this or --from-store)",
            },
            ArgSpec {
                name: "from-store",
                value: "<dir>",
                help: "serve the pages of a `kyp gen --store` directory instead",
            },
            ArgSpec {
                name: "requests",
                value: "<n>",
                help: "serve a seeded synthetic trace instead of stdin",
            },
            ArgSpec {
                name: "trace-seed",
                value: "<n>",
                help: "synthetic trace seed (default 2015)",
            },
            ArgSpec {
                name: "duplicate-rate",
                value: "<f>",
                help: "synthetic trace duplicate fraction (default 0.2)",
            },
            ArgSpec {
                name: "arrival-gap-ms",
                value: "<n>",
                help: "synthetic trace inter-arrival gap (default 10)",
            },
            ArgSpec {
                name: "queue-capacity",
                value: "<n>",
                help: "admission queue capacity (default 64)",
            },
            ArgSpec {
                name: "max-batch",
                value: "<n>",
                help: "micro-batch size limit (default 8)",
            },
            ArgSpec {
                name: "max-delay-ms",
                value: "<n>",
                help: "micro-batch delay limit (default 25)",
            },
            ArgSpec {
                name: "cache",
                value: "on|off",
                help: "verdict cache (default on)",
            },
            CASCADE_ARG,
            CASCADE_BAND_ARG,
            METRICS_ARG,
            TRACE_ARG,
            THREADS_ARG,
        ],
    },
    CommandSpec {
        name: "cluster",
        summary: "deterministic multi-node serving simulation over the corpus",
        positional: None,
        args: &[
            ArgSpec {
                name: "model",
                value: "<model.json>",
                help: "trained model snapshot (required)",
            },
            ArgSpec {
                name: "data",
                value: "<dir>",
                help: "`kyp gen` jsonl directory (this or --from-store)",
            },
            ArgSpec {
                name: "from-store",
                value: "<dir>",
                help: "serve the pages of a `kyp gen --store` directory instead",
            },
            ArgSpec {
                name: "shards",
                value: "<n>",
                help: "scoring nodes / cache shards (default 4)",
            },
            ArgSpec {
                name: "replicas",
                value: "<n>",
                help: "replica fan-out for hot URLs (default 1)",
            },
            ArgSpec {
                name: "crash-rate",
                value: "<f>",
                help: "per-incarnation node crash probability (default 0)",
            },
            ArgSpec {
                name: "crash-seed",
                value: "<n>",
                help: "crash schedule seed (default 2015)",
            },
            ArgSpec {
                name: "requests",
                value: "<n>",
                help: "synthetic trace length (default 500)",
            },
            ArgSpec {
                name: "trace-seed",
                value: "<n>",
                help: "synthetic trace seed (default 2015)",
            },
            ArgSpec {
                name: "duplicate-rate",
                value: "<f>",
                help: "synthetic trace duplicate fraction (default 0.2)",
            },
            ArgSpec {
                name: "arrival-gap-ms",
                value: "<n>",
                help: "synthetic trace inter-arrival gap (default 10)",
            },
            ArgSpec {
                name: "queue-capacity",
                value: "<n>",
                help: "per-node admission queue capacity (default 64)",
            },
            ArgSpec {
                name: "verdicts",
                value: "<path>",
                help: "write the id-sorted verdict stream (the placement-invariant bytes)",
            },
            CASCADE_ARG,
            CASCADE_BAND_ARG,
            METRICS_ARG,
            THREADS_ARG,
        ],
    },
    CommandSpec {
        name: "lint",
        summary: "workspace determinism & invariant static analysis",
        positional: None,
        args: &[
            ArgSpec {
                name: "root",
                value: "<dir>",
                help: "workspace root (default: auto-detected)",
            },
            ArgSpec {
                name: "rules",
                value: "<D01,..>",
                help: "comma-separated rule filter",
            },
            ArgSpec {
                name: "json",
                value: "<path>",
                help: "also write the report as json",
            },
            ArgSpec {
                name: "deny-warnings",
                value: "",
                help: "fail on Severity::Warning findings too (D06)",
            },
            ArgSpec {
                name: "fix-stale-allows",
                value: "",
                help: "remove allow annotations that suppress nothing",
            },
            ArgSpec {
                name: "check-allows",
                value: "<tsv>",
                help: "fail if an allow is missing from this baseline",
            },
            ArgSpec {
                name: "update-allows",
                value: "<tsv>",
                help: "rewrite the allow baseline from this run",
            },
            THREADS_ARG,
        ],
    },
];

/// `kyp store <subcommand>` — currently just `inspect`. Dispatched
/// outside [`COMMANDS`] because it is the one two-word command.
const STORE_INSPECT: CommandSpec = CommandSpec {
    name: "store inspect",
    summary: "validate a columnar store directory and print its layout",
    positional: Some(&ArgSpec {
        name: "dir",
        value: "<dir>",
        help: "`kyp gen --store` directory to inspect",
    }),
    args: &[THREADS_ARG],
};

/// Parses one subcommand's arguments against `spec`, printing help or
/// parse errors itself. `Ok(None)` means "already handled, exit clean".
fn parse_command(spec: &CommandSpec, args: &[String]) -> Result<Option<ParsedOpts>, ExitCode> {
    let opts = match spec.parse(args) {
        Ok(Parsed::Help) => {
            println!("{}", spec.help_text());
            return Ok(None);
        }
        Ok(Parsed::Opts(opts)) => opts,
        Err(e) => {
            eprintln!("kyp: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    if let Some(threads) = opts.get("threads") {
        match threads.parse::<usize>() {
            Ok(n) if n >= 1 => knowyourphish::exec::set_threads(n),
            _ => {
                eprintln!("kyp: invalid --threads {threads:?} (want a positive integer)");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    Ok(Some(opts))
}

fn finish(result: Result<(), String>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("kyp: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if command == "store" {
        match args.get(1).map(String::as_str) {
            Some("inspect") => {
                return match parse_command(&STORE_INSPECT, &args[2..]) {
                    Ok(Some(opts)) => finish(cmd_store_inspect(&opts)),
                    Ok(None) => ExitCode::SUCCESS,
                    Err(code) => code,
                };
            }
            Some("--help") | None => {
                println!("{}", STORE_INSPECT.help_text());
                return ExitCode::SUCCESS;
            }
            Some(other) => {
                eprintln!(
                    "kyp: unknown store subcommand {other:?} (try `kyp store inspect <dir>`)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(spec) = COMMANDS.iter().find(|s| s.name == command.as_str()) else {
        eprintln!("kyp: unknown command {command:?}\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_command(spec, &args[1..]) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(code) => return code,
    };
    finish(match spec.name {
        "gen" => cmd_gen(&opts),
        "train" => cmd_train(&opts),
        "cascade-train" => cmd_cascade_train(&opts),
        "eval" => cmd_eval(&opts),
        "scan" => cmd_scan(&opts),
        "serve" => cmd_serve(&opts),
        "cluster" => cmd_cluster(&opts),
        "lint" => cmd_lint(&opts),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    })
}

const USAGE: &str = "\
kyp — Know Your Phish reproduction CLI

USAGE:
  kyp gen   --out <dir> [--scale <f>] [--seed <n>]   generate + scrape a corpus
            [--fault-rate <f>] [--fault-seed <n>]    ...through an unreliable web
            [--store <dir>]                          ...into a columnar store too
  kyp train --data <dir> --out <model.json>          train the detector
            [--from-store <dir>]                     ...from stored feature rows
  kyp cascade-train --data <dir> --out <model.json>  train the URL-only pre-filter
            [--from-store <dir>]                     ...from stored training URLs
  kyp eval  --data <dir> --model <model.json>        evaluate on the test sets
            [--from-store <dir>]                     ...from stored feature rows
  kyp scan  --model <model.json> --data <dir> --page <page.json>
            [--metrics <path>] [--trace <path>]      classify one scraped page
            [--from-store <dir>] [--verdicts <path>] ...or every stored page
            [--cascade <model.json>] [--cascade-band <lo,hi>]
  kyp serve --model <model.json> --data <dir>        online scoring service
            [--requests <n>] [--trace-seed <n>]      built-in seeded workload...
            [--duplicate-rate <f>] [--arrival-gap-ms <n>]
            [--queue-capacity <n>] [--max-batch <n>] [--max-delay-ms <n>]
            [--cache on|off]                         ...or requests over stdin
            [--cascade <model.json>] [--cascade-band <lo,hi>]
            [--metrics <path>] [--trace <path>]      observability exports
  kyp cluster --model <model.json> --data <dir>      multi-node serving simulation
            [--shards <n>] [--replicas <n>]          cache shards + hot fan-out
            [--crash-rate <f>] [--crash-seed <n>]    seeded crash/recovery schedule
            [--requests <n>] [--trace-seed <n>]      seeded synthetic workload
            [--duplicate-rate <f>] [--arrival-gap-ms <n>] [--queue-capacity <n>]
            [--cascade <model.json>] [--cascade-band <lo,hi>]
            [--verdicts <path>] [--metrics <path>]   invariant bytes + cluster.* metrics
  kyp lint  [--root <dir>] [--rules D01,D02,...]     determinism static analysis
            [--json <path>]                          (see DESIGN.md section 8e)
  kyp store inspect <dir>                            validate + describe a store

Run `kyp <command> --help` for the full option list of one command.
Unknown or valueless options are hard errors in every subcommand.

`kyp gen --store <dir>` streams scraped pages AND their extracted
feature rows into a checksummed columnar store (pages.kyps +
features.kypf) in bounded memory; `--from-store` then trains, evaluates,
scans or serves straight from those files without re-scraping or
re-extracting anything. Models, metrics and verdict streams from a
store are byte-identical to the jsonl path at any --threads value.
`serve` and `cluster` accept --from-store in place of --data.

`kyp serve` speaks newline-delimited json. Without --requests it reads
one request object per stdin line and writes one response object per
stdout line (the end-of-run report goes to stderr):

  request : {\"id\": 0, \"url\": \"http://x.example.com/\", \"arrival_ms\": 0}
  response: {\"id\": 0, \"url\": \"...\", \"outcome\": {\"Verdict\": {\"kind\":
            \"legitimate\", \"score\": 0.12, \"targets\": []}}, \"cache\":
            \"Miss\", \"degraded\": false, \"latency_ms\": 10, \"completed_ms\": 10}

With --requests <n> it serves a seeded synthetic trace over the corpus
URLs instead; the same seed always produces the same responses.

`kyp cascade-train` fits a cheap URL-only detector over lexical URL
features (no page content). Passing that snapshot to scan, serve or
cluster via --cascade screens every URL first: scores outside the
uncertainty band are final at ~zero cost and carry `stage=url_only`;
only the uncertain band runs the full pipeline. --cascade-band 0,1
forces every page through the full pipeline — that stream is
byte-identical to the same run without --cascade (CI proves it with
`cmp`).

`kyp cluster` replays the same kind of trace through a simulated fleet:
N scoring nodes behind a consistent-hash router, with per-node
backpressure, seeded crash/recovery and heartbeat-driven failover. Its
--verdicts file (the id-sorted verdict stream) is byte-identical at any
--shards, --replicas, --threads or --crash-rate value — CI compares the
files with `cmp`.

--metrics and --trace (scan, serve) export the deterministic
observability layer: a metrics-registry json file and an NDJSON span
trace stamped from the virtual clock. Both files are byte-identical at
any --threads value.

Every command accepts --threads <n> to size the parallel execution pool
(default: KYP_THREADS or the machine's available parallelism). Results
are bit-identical at any thread count.";

/// Writes `contents` to `path`, creating parent directories as needed.
fn write_creating_dirs(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
    }
    fs::write(path, contents).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Honours `--metrics` / `--trace` by rendering the sink's registry and
/// tracer to the requested paths.
fn write_obs_exports(opts: &ParsedOpts, sink: &ObsSink) -> Result<(), String> {
    if let Some(path) = opts.get("metrics") {
        write_creating_dirs(Path::new(path), &sink.registry().render_json())?;
        eprintln!("wrote metrics to {path}");
    }
    if let Some(path) = opts.get("trace") {
        write_creating_dirs(Path::new(path), &sink.tracer().render_ndjson())?;
        eprintln!("wrote trace to {path}");
    }
    Ok(())
}

/// Scrapes the named URL bundles through a resilient scraper, writing one
/// `VisitedPage` json line per captured page, and accounts every attempt
/// in the returned [`ScrapeReport`].
fn scrape_bundles<W: World>(
    scraper: &mut ResilientBrowser<'_, W>,
    bundles: &[(&str, &[String])],
    out: &Path,
) -> Result<ScrapeReport, String> {
    let mut report = ScrapeReport::default();
    for (name, urls) in bundles {
        let path = out.join(format!("{name}.jsonl"));
        let mut file = fs::File::create(&path).map_err(|e| format!("create {path:?}: {e}"))?;
        let mut n = 0;
        for url in *urls {
            report.requested += 1;
            match scraper.scrape(url) {
                Ok(scraped) => {
                    report.completed += 1;
                    if scraped.availability.is_degraded() {
                        report.degraded += 1;
                    }
                    let line = serde_json::to_string(&scraped.visit).map_err(|e| e.to_string())?;
                    writeln!(file, "{line}").map_err(|e| e.to_string())?;
                    n += 1;
                }
                Err(failure) => {
                    report.failed += 1;
                    report.count_cause(failure.cause);
                }
            }
        }
        eprintln!("  {name}.jsonl: {n} pages");
    }
    report.retries = scraper.total_retries();
    report.breaker_trips = scraper.breaker().trips();
    report.virtual_elapsed_ms = scraper.clock().now_ms();
    Ok(report)
}

/// Prints the shared scrape accounting lines of `kyp gen`.
fn report_scrape(report: &ScrapeReport) {
    eprintln!(
        "scrape report: {}/{} pages captured ({} degraded), {} retries, {} breaker trips",
        report.completed, report.requested, report.degraded, report.retries, report.breaker_trips
    );
    if report.failed > 0 {
        eprintln!(
            "  failures: {} transient, {} timeout, {} deadline, {} circuit-open, {} not-found, {} bad-url, {} redirect-loop",
            report.failed_transient,
            report.failed_timeout,
            report.failed_deadline,
            report.failed_circuit_open,
            report.failed_not_found,
            report.failed_bad_url,
            report.failed_too_many_redirects
        );
    }
}

/// `kyp gen`: synthesise a corpus and write the jsonl scrape bundles,
/// a columnar store directory, or both.
fn cmd_gen(opts: &ParsedOpts) -> Result<(), String> {
    let out = opts.get("out").map(PathBuf::from);
    let store_dir = opts.get("store").map(PathBuf::from);
    if out.is_none() && store_dir.is_none() {
        return Err("kyp gen needs --out <dir>, --store <dir>, or both".to_owned());
    }
    let scale: f64 = opts.num("scale", 0.02)?;
    let mut config = CampaignConfig::scaled(scale);
    config.seed = opts.num("seed", config.seed)?;
    let fault_rate: f64 = opts.num("fault-rate", 0.0)?;
    let fault_seed: u64 = opts.num("fault-seed", config.seed)?;

    eprintln!("generating corpus at scale {scale}...");
    let corpus = Corpus::generate(&config);

    if let Some(out) = &out {
        fs::create_dir_all(out).map_err(|e| format!("create {out:?}: {e}"))?;
        let phish_train: Vec<String> = corpus.phish_train.iter().map(|r| r.url.clone()).collect();
        let phish_test: Vec<String> = corpus.phish_test.iter().map(|r| r.url.clone()).collect();
        let leg_test = corpus.english_test().to_vec();
        let bundles: [(&str, &[String]); 4] = [
            ("phish_train", &phish_train),
            ("phish_test", &phish_test),
            ("leg_train", &corpus.leg_train),
            ("leg_test", &leg_test),
        ];
        let report = if fault_rate > 0.0 {
            eprintln!("scraping through a faulty web (rate {fault_rate}, seed {fault_seed})...");
            let flaky = FlakyWorld::new(&corpus.world, FaultPlan::new(fault_seed, fault_rate));
            let mut scraper = ResilientBrowser::new(&flaky);
            scrape_bundles(&mut scraper, &bundles, out)?
        } else {
            let mut scraper = ResilientBrowser::new(&corpus.world);
            scrape_bundles(&mut scraper, &bundles, out)?
        };
        report_scrape(&report);

        // The offline popularity ranking and the search-engine index.
        storeflow::write_corpus_sidecars(out, &corpus)?;

        // One sample phish bundle for `kyp scan` demos.
        let browser = Browser::new(&corpus.world);
        if let Ok(visit) = browser.visit(&phish_test[0]) {
            let json = serde_json::to_string_pretty(&visit).map_err(|e| e.to_string())?;
            fs::write(out.join("sample_phish.json"), json).map_err(|e| e.to_string())?;
        }
        eprintln!("wrote corpus to {out:?}");
    }

    if let Some(dir) = &store_dir {
        eprintln!("streaming pages + features into the columnar store...");
        let report = if fault_rate > 0.0 {
            eprintln!("scraping through a faulty web (rate {fault_rate}, seed {fault_seed})...");
            let flaky = FlakyWorld::new(&corpus.world, FaultPlan::new(fault_seed, fault_rate));
            storeflow::build_store(dir, &corpus, &config, &flaky, fault_rate, fault_seed)?
        } else {
            storeflow::build_store(dir, &corpus, &config, &corpus.world, fault_rate, fault_seed)?
        };
        for (name, n) in &report.bundle_pages {
            eprintln!("  {name}: {n} pages");
        }
        report_scrape(&report.scrape);
        eprintln!(
            "wrote store to {dir:?}: {} pages ({} bytes) + {} feature rows ({} bytes)",
            report.pages, report.page_bytes, report.rows, report.feature_bytes
        );
    }
    Ok(())
}

fn read_jsonl(path: &Path) -> Result<Vec<VisitedPage>, String> {
    let file = fs::File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
    let mut pages = Vec::new();
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let page: VisitedPage =
            serde_json::from_str(&line).map_err(|e| format!("{path:?} line {}: {e}", i + 1))?;
        pages.push(page);
    }
    Ok(pages)
}

fn load_ranker(dir: &Path) -> Result<DomainRanker, String> {
    let json = fs::read_to_string(dir.join("ranker.json"))
        .map_err(|e| format!("read ranker.json: {e}"))?;
    serde_json::from_str(&json).map_err(|e| e.to_string())
}

fn featurize(
    extractor: &FeatureExtractor,
    legit: &[VisitedPage],
    phish: &[VisitedPage],
) -> Dataset {
    let mut data = Dataset::with_capacity(
        knowyourphish::core::features::FEATURE_COUNT,
        legit.len() + phish.len(),
    );
    for row in extractor.extract_batch(legit) {
        data.push_row(&row, false);
    }
    for row in extractor.extract_batch(phish) {
        data.push_row(&row, true);
    }
    data
}

/// Resolves the `--data` / `--from-store` pair of a subcommand: exactly
/// one must be given. Returns `(dir, from_store)`.
fn data_source(opts: &ParsedOpts) -> Result<(PathBuf, bool), String> {
    match (opts.get("from-store"), opts.get("data")) {
        (Some(_), Some(_)) => {
            Err("--from-store and --data are mutually exclusive (pick one source)".to_owned())
        }
        (Some(dir), None) => Ok((PathBuf::from(dir), true)),
        (None, Some(dir)) => Ok((PathBuf::from(dir), false)),
        (None, None) => Err("missing required option --data (or --from-store)".to_owned()),
    }
}

/// `kyp train`: fit the detector from the jsonl bundles or straight
/// from a feature store's persisted rows (no re-extraction).
fn cmd_train(opts: &ParsedOpts) -> Result<(), String> {
    let (data_dir, from_store) = data_source(opts)?;
    let out = PathBuf::from(opts.require("out")?);

    let ranker = load_ranker(&data_dir)?;
    let train = if from_store {
        let train = storeflow::load_split_dataset(&data_dir, "leg_train", "phish_train")?;
        let phish = train.labels().iter().filter(|l| **l).count();
        eprintln!(
            "training on {} legitimate + {} phish stored rows...",
            train.labels().len() - phish,
            phish
        );
        train
    } else {
        let extractor = FeatureExtractor::new(ranker.clone());
        let legit = read_jsonl(&data_dir.join("leg_train.jsonl"))?;
        let phish = read_jsonl(&data_dir.join("phish_train.jsonl"))?;
        eprintln!(
            "training on {} legitimate + {} phish pages...",
            legit.len(),
            phish.len()
        );
        featurize(&extractor, &legit, &phish)
    };
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let snapshot = ModelSnapshot::new(detector, ranker);
    snapshot
        .save(&out)
        .map_err(|e| format!("write {out:?}: {e}"))?;
    eprintln!(
        "model snapshot (format v{}) written to {out:?}",
        snapshot.format_version
    );
    Ok(())
}

/// `kyp cascade-train`: fit the URL-only first stage of the cascade
/// from the training bundles' raw URLs — no page content, no scraping.
fn cmd_cascade_train(opts: &ParsedOpts) -> Result<(), String> {
    let (data_dir, from_store) = data_source(opts)?;
    let out = PathBuf::from(opts.require("out")?);
    let ranker = load_ranker(&data_dir)?;
    let (legit, phish) = if from_store {
        storeflow::load_split_urls(&data_dir, "leg_train", "phish_train")?
    } else {
        let url_strings = |pages: Vec<VisitedPage>| -> Vec<String> {
            pages.iter().map(|p| p.starting_url.to_string()).collect()
        };
        (
            url_strings(read_jsonl(&data_dir.join("leg_train.jsonl"))?),
            url_strings(read_jsonl(&data_dir.join("phish_train.jsonl"))?),
        )
    };
    eprintln!(
        "training the URL stage on {} legitimate + {} phish URLs...",
        legit.len(),
        phish.len()
    );
    let detector = knowyourphish::core::cascade::train_url_stage(
        &legit,
        &phish,
        &ranker,
        &DetectorConfig::url_stage(),
    )?;
    let snapshot = ModelSnapshot::new_url_stage(detector, ranker);
    snapshot
        .save(&out)
        .map_err(|e| format!("write {out:?}: {e}"))?;
    eprintln!(
        "URL-stage snapshot (format v{}) written to {out:?}",
        snapshot.format_version
    );
    Ok(())
}

/// Resolves `--cascade` / `--cascade-band` into a ready pre-filter.
/// `Ok(None)` means the cascade is off; a band without a model is a
/// hard error, as is a malformed band or a snapshot of the wrong stage.
fn load_cascade(opts: &ParsedOpts) -> Result<Option<CascadeClassifier>, String> {
    let Some(path) = opts.get("cascade") else {
        if opts.get("cascade-band").is_some() {
            return Err("--cascade-band needs --cascade <model.json>".to_owned());
        }
        return Ok(None);
    };
    let band = match opts.get("cascade-band") {
        Some(spec) => CascadeBand::parse(spec)?,
        None => CascadeBand::default(),
    };
    let snapshot =
        ModelSnapshot::load(Path::new(path)).map_err(|e| format!("load {path:?}: {e}"))?;
    let cascade = CascadeClassifier::from_snapshot(snapshot, band)
        .map_err(|e| format!("load {path:?}: {e}"))?;
    Ok(Some(cascade))
}

fn load_model(opts: &ParsedOpts) -> Result<ModelSnapshot, String> {
    let path = PathBuf::from(opts.require("model")?);
    ModelSnapshot::load(&path).map_err(|e| format!("load {path:?}: {e}"))
}

/// `kyp eval`: Table VI-style metrics on the held-out test bundles,
/// from jsonl or streamed block-by-block out of a feature store.
fn cmd_eval(opts: &ParsedOpts) -> Result<(), String> {
    let (data_dir, from_store) = data_source(opts)?;
    let bundle = load_model(opts)?;

    let (scores, labels) = if from_store {
        storeflow::score_split_streaming(&data_dir, &bundle.detector, "leg_test", "phish_test")?
    } else {
        let extractor = FeatureExtractor::new(bundle.ranker.clone());
        let legit = read_jsonl(&data_dir.join("leg_test.jsonl"))?;
        let phish = read_jsonl(&data_dir.join("phish_test.jsonl"))?;
        let test = featurize(&extractor, &legit, &phish);
        let scores = bundle.detector.score_dataset(&test);
        (scores, test.labels().to_vec())
    };

    let conf = metrics::Confusion::at_threshold(&scores, &labels, bundle.detector.threshold());
    let phish = labels.iter().filter(|l| **l).count();
    println!(
        "test set: {} legitimate + {} phish",
        labels.len() - phish,
        phish
    );
    println!("precision {:.3}", conf.precision());
    println!("recall    {:.3}", conf.recall());
    println!("f1-score  {:.3}", conf.f1());
    println!("fp rate   {:.4}", conf.fpr());
    println!("auc       {:.4}", metrics::auc(&scores, &labels));
    Ok(())
}

fn load_engine(dir: &Path) -> Result<SearchEngine, String> {
    let path = dir.join("index.jsonl");
    let file = fs::File::open(&path).map_err(|e| format!("open {path:?}: {e}"))?;
    let mut engine = SearchEngine::new();
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let entry: IndexEntry = serde_json::from_str(&line).map_err(|e| e.to_string())?;
        engine.index_page(&entry.rdn, &entry.mld, &entry.text);
    }
    Ok(engine)
}

/// `kyp scan --from-store`: classify every stored page block by block
/// and emit the deterministic verdict stream (scores as exact IEEE-754
/// bit patterns) to stdout or `--verdicts`.
fn scan_store(opts: &ParsedOpts, dir: &Path) -> Result<(), String> {
    let bundle = load_model(opts)?;
    let engine = load_engine(dir)?;
    let extractor = FeatureExtractor::new(bundle.ranker.clone());
    let identifier = TargetIdentifier::new(Arc::new(engine));
    let pipeline = Pipeline::new(extractor, bundle.detector, identifier);
    let lines = if let Some(cascade) = load_cascade(opts)? {
        let (lines, counters) = storeflow::store_verdict_lines_cascade(dir, &pipeline, &cascade)?;
        eprintln!(
            "cascade (band {}): {} screened, {} final at the URL stage, {} fell through, {} unscorable",
            cascade.band(),
            counters.screened,
            counters.url_only,
            counters.fallthrough,
            counters.unscorable
        );
        lines
    } else {
        storeflow::store_verdict_lines(dir, &pipeline)?
    };
    if let Some(path) = opts.get("verdicts") {
        let mut stream = lines.join("\n");
        stream.push('\n');
        write_creating_dirs(Path::new(path), &stream)?;
        eprintln!("wrote {} verdicts to {path}", lines.len());
    } else {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in &lines {
            writeln!(out, "{line}").map_err(|e| e.to_string())?;
        }
        eprintln!("classified {} stored pages", lines.len());
    }
    Ok(())
}

/// `kyp scan`: classify a single scraped page and identify its target —
/// or, with `--from-store`, every page of a store directory.
fn cmd_scan(opts: &ParsedOpts) -> Result<(), String> {
    if let Some(dir) = opts.get("from-store") {
        if opts.get("data").is_some() || opts.get("page").is_some() {
            return Err(
                "--from-store replaces --data and --page (it classifies the stored corpus)"
                    .to_owned(),
            );
        }
        return scan_store(opts, Path::new(dir));
    }
    let bundle = load_model(opts)?;
    let data_dir = PathBuf::from(opts.require("data")?);
    let page_path = PathBuf::from(opts.require("page")?);
    let json = fs::read_to_string(&page_path).map_err(|e| format!("read {page_path:?}: {e}"))?;
    let page: VisitedPage = serde_json::from_str(&json).map_err(|e| e.to_string())?;

    let engine = load_engine(&data_dir)?;
    let extractor = FeatureExtractor::new(bundle.ranker.clone());
    let identifier = TargetIdentifier::new(Arc::new(engine));
    let pipeline = Pipeline::new(extractor, bundle.detector, identifier);

    println!("page  : {}", page.landing_url);
    println!("title : {:?}", page.title);
    let mut sink = ObsSink::new();
    if let Some(cascade) = load_cascade(opts)? {
        match cascade.prescreen(page.starting_url.as_ref()) {
            CascadeDecision::Final(verdict) => {
                sink.cascade_prescreen(CascadeOutcome::UrlOnlyFinal);
                println!(
                    "cascade: URL score {:.3} outside band {} — final at the URL stage, no scrape",
                    verdict.score(),
                    cascade.band()
                );
                match verdict.verdict {
                    PipelineVerdict::Suspicious { score } => {
                        println!("verdict: suspicious (confidence {score:.3}) stage=url_only");
                    }
                    _ => println!(
                        "verdict: legitimate (confidence {:.3}) stage=url_only",
                        verdict.score()
                    ),
                }
                return write_obs_exports(opts, &sink);
            }
            CascadeDecision::Uncertain { url_score } => {
                sink.cascade_prescreen(CascadeOutcome::Fallthrough);
                println!(
                    "cascade: URL score {url_score:.3} inside band {} — running the full pipeline",
                    cascade.band()
                );
            }
            CascadeDecision::Unscorable => {
                sink.cascade_prescreen(CascadeOutcome::Unscorable);
                println!("cascade: URL unscorable — running the full pipeline");
            }
        }
    }
    match pipeline.classify_bundle(&page, &SourceAvailability::FULL, &mut sink) {
        PipelineVerdict::Legitimate { score } => {
            println!("verdict: legitimate (confidence {score:.3})");
        }
        PipelineVerdict::ConfirmedLegitimate { score, step } => println!(
            "verdict: legitimate — flagged ({score:.3}) but confirmed at identification step {step}"
        ),
        PipelineVerdict::Phish { score, candidates } => {
            println!("verdict: PHISH (confidence {score:.3})");
            for (i, c) in candidates.iter().enumerate() {
                println!(
                    "  target #{} : {} ({}) — {} appearances",
                    i + 1,
                    c.mld,
                    c.rdn,
                    c.appearances
                );
            }
        }
        PipelineVerdict::Suspicious { score } => {
            println!("verdict: suspicious (confidence {score:.3}), no target identified");
        }
    }
    write_obs_exports(opts, &sink)
}

/// Assembles the serving pipeline and page store from a model snapshot
/// and a `kyp gen` data directory — jsonl bundles or a columnar store.
fn load_serving_stack(opts: &ParsedOpts) -> Result<(Pipeline, StoredPages, Vec<String>), String> {
    let snapshot = load_model(opts)?;
    let (data_dir, from_store) = data_source(opts)?;
    let engine = load_engine(&data_dir)?;
    let extractor = FeatureExtractor::new(snapshot.ranker.clone());
    let identifier = TargetIdentifier::new(Arc::new(engine));
    let pipeline = Pipeline::new(extractor, snapshot.detector, identifier);

    if from_store {
        let (pages, urls) = storeflow::load_serving_pages(&data_dir)?;
        return Ok((pipeline, pages, urls));
    }
    let mut pages = Vec::new();
    for name in ["phish_train", "phish_test", "leg_train", "leg_test"] {
        let path = data_dir.join(format!("{name}.jsonl"));
        if path.exists() {
            pages.extend(read_jsonl(&path)?);
        }
    }
    if pages.is_empty() {
        return Err(format!(
            "no scraped pages found under {data_dir:?} (run `kyp gen` first)"
        ));
    }
    let urls: Vec<String> = pages.iter().map(|p| p.starting_url.to_string()).collect();
    Ok((pipeline, StoredPages::new(pages), urls))
}

/// `kyp store inspect <dir>`: validate both store files (headers,
/// per-block checksums, pages/features pairing) and print the layout.
fn cmd_store_inspect(opts: &ParsedOpts) -> Result<(), String> {
    let dir = PathBuf::from(opts.require("dir")?);
    let inspection = knowyourphish::store::inspect_dir(&dir)
        .map_err(|e| format!("inspect {}: {e}", dir.display()))?;
    print!("{}", inspection.render());
    if inspection.is_clean() {
        Ok(())
    } else {
        Err("store damage found (see report above)".to_owned())
    }
}

/// `kyp serve`: online scoring over the captured corpus — newline-
/// delimited json requests on stdin (or a seeded synthetic trace with
/// `--requests`), one response per line on stdout, report on stderr.
fn cmd_serve(opts: &ParsedOpts) -> Result<(), String> {
    let (pipeline, pages, urls) = load_serving_stack(opts)?;
    let cache = match opts.get("cache") {
        None | Some("on") => Some(CacheConfig::default()),
        Some("off") => None,
        Some(other) => return Err(format!("invalid --cache {other:?} (want on or off)")),
    };
    let config = ServeConfig {
        queue_capacity: opts.num("queue-capacity", 64)?,
        batch: BatchPolicy {
            max_batch: opts.num("max-batch", 8)?,
            max_delay_ms: opts.num("max-delay-ms", 25)?,
        },
        cache,
        ..ServeConfig::default()
    };
    let mut service = ScoringService::new(pipeline, pages, config);
    if let Some(cascade) = load_cascade(opts)? {
        service = service.with_cascade(cascade);
    }
    let mut sink = ObsSink::new();

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut emit = |responses: Vec<knowyourphish::serve::ServeResponse>| -> Result<(), String> {
        for response in responses {
            let line = serde_json::to_string(&response).map_err(|e| e.to_string())?;
            writeln!(out, "{line}").map_err(|e| e.to_string())?;
        }
        Ok(())
    };

    if let Some(requests) = opts.get("requests") {
        let workload = WorkloadConfig {
            seed: opts.num("trace-seed", 2015)?,
            requests: requests
                .parse()
                .map_err(|_| format!("invalid --requests {requests:?}"))?,
            duplicate_rate: opts.num("duplicate-rate", 0.2)?,
            arrival: ArrivalPattern::Steady {
                gap_ms: opts.num("arrival-gap-ms", 10)?,
            },
            fault_seed: 0,
            fault_rate: 0.0,
        };
        let trace = generate(&workload, &urls);
        eprintln!(
            "serving {} synthetic requests (seed {}, duplicate rate {})...",
            trace.len(),
            workload.seed,
            workload.duplicate_rate
        );
        emit(service.run_trace_observed(&trace, &mut sink))?;
    } else {
        let stdin = std::io::stdin();
        for (i, line) in stdin.lock().lines().enumerate() {
            let line = line.map_err(|e| e.to_string())?;
            if line.trim().is_empty() {
                continue;
            }
            let request: ServeRequest =
                serde_json::from_str(&line).map_err(|e| format!("stdin line {}: {e}", i + 1))?;
            emit(service.push_observed(request, &mut sink))?;
        }
        emit(service.finish_observed(&mut sink))?;
    }

    let report = service.report();
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    eprintln!("{json}");
    service.export_metrics(sink.registry_mut());
    write_obs_exports(opts, &sink)
}

/// `kyp cluster`: replay a seeded synthetic trace through a simulated
/// multi-node scoring fleet — responses on stdout, report on stderr, the
/// id-sorted (placement-invariant) verdict stream to `--verdicts`.
fn cmd_cluster(opts: &ParsedOpts) -> Result<(), String> {
    let (pipeline, pages, urls) = load_serving_stack(opts)?;
    let crash_rate: f64 = opts.num("crash-rate", 0.0)?;
    let crash_seed: u64 = opts.num("crash-seed", 2015)?;
    let config = ClusterConfig {
        shards: opts.num("shards", 4)?,
        replicas: opts.num("replicas", 1)?,
        node: ServeConfig {
            queue_capacity: opts.num("queue-capacity", 64)?,
            cache: Some(CacheConfig::default()),
            ..ServeConfig::default()
        },
        crash: (crash_rate > 0.0).then(|| CrashPlan::new(crash_seed, crash_rate)),
        ..ClusterConfig::default()
    };
    let workload = WorkloadConfig {
        seed: opts.num("trace-seed", 2015)?,
        requests: opts.num("requests", 500)?,
        duplicate_rate: opts.num("duplicate-rate", 0.2)?,
        arrival: ArrivalPattern::Steady {
            gap_ms: opts.num("arrival-gap-ms", 10)?,
        },
        fault_seed: 0,
        fault_rate: 0.0,
    };
    let trace = generate(&workload, &urls);
    eprintln!(
        "simulating {} requests over {} nodes (replicas {}, crash rate {})...",
        trace.len(),
        config.shards,
        config.replicas,
        crash_rate
    );
    let mut cluster = ClusterService::new(pipeline, pages, config);
    if let Some(cascade) = load_cascade(opts)? {
        cluster = cluster.with_cascade(cascade);
    }
    let responses = cluster.run_trace(&trace);

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for response in &responses {
        let line = serde_json::to_string(response).map_err(|e| e.to_string())?;
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
    }

    if let Some(path) = opts.get("verdicts") {
        let mut stream = verdict_stream(&responses).join("\n");
        stream.push('\n');
        write_creating_dirs(Path::new(path), &stream)?;
        eprintln!("wrote id-sorted verdict stream to {path}");
    }

    let report = cluster.report();
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    eprintln!("{json}");
    if let Some(path) = opts.get("metrics") {
        let mut registry = knowyourphish::obs::MetricsRegistry::new();
        cluster.export_metrics(&mut registry);
        write_creating_dirs(Path::new(path), &registry.render_json())?;
        eprintln!("wrote metrics to {path}");
    }
    Ok(())
}

/// `kyp lint`: run the workspace determinism & invariant static-analysis
/// pass (DESIGN.md sections 8e and 8j) and fail on violations.
fn cmd_lint(opts: &ParsedOpts) -> Result<(), String> {
    let rules = opts
        .get("rules")
        .map(knowyourphish::lint::parse_rule_filter)
        .transpose()?;
    if opts.flag("fix-stale-allows") && rules.is_some() {
        return Err(
            "--fix-stale-allows needs a full-rule run (an allow for a filtered-out rule \
             would look stale); drop --rules"
                .to_owned(),
        );
    }
    let root = if let Some(dir) = opts.get("root") {
        PathBuf::from(dir)
    } else {
        let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
        knowyourphish::lint::find_workspace_root(&cwd)
            .ok_or("no workspace root found (pass --root <dir>)")?
    };
    let outcome = knowyourphish::lint::run_lint(&root, rules.as_ref())?;
    if opts.flag("fix-stale-allows") {
        for edit in knowyourphish::lint::fix::remove_stale_allows(&root, &outcome)? {
            println!("kyp lint: {edit}");
        }
    }
    if let Some(path) = opts.get("update-allows") {
        fs::write(
            path,
            knowyourphish::lint::fix::render_allow_baseline(&outcome),
        )
        .map_err(|e| format!("write {path}: {e}"))?;
        println!("kyp lint: allow baseline written to {path}");
    }
    if let Some(path) = opts.get("json") {
        let path = PathBuf::from(path);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        fs::write(&path, outcome.render_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    print!("{}", outcome.render_human());
    if let Some(path) = opts.get("check-allows") {
        let baseline = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        if let Err(growth) = knowyourphish::lint::fix::check_allow_baseline(&outcome, &baseline) {
            return Err(format!(
                "{growth}\njustify the new allow and refresh the baseline with \
                 `kyp lint --update-allows {path}`"
            ));
        }
    }
    let clean = if opts.flag("deny-warnings") {
        outcome.is_warning_clean()
    } else {
        outcome.is_clean()
    };
    if clean {
        Ok(())
    } else {
        Err("lint violations found (see report above)".to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::{COMMANDS, STORE_INSPECT};

    #[test]
    fn every_command_accepts_threads() {
        for spec in COMMANDS {
            assert!(
                spec.args.iter().any(|a| a.name == "threads"),
                "`kyp {}` is missing --threads",
                spec.name
            );
        }
    }

    #[test]
    fn command_names_are_unique() {
        for (i, a) in COMMANDS.iter().enumerate() {
            for b in &COMMANDS[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn option_names_are_unique_within_each_command() {
        for spec in COMMANDS {
            for (i, a) in spec.args.iter().enumerate() {
                for b in &spec.args[i + 1..] {
                    assert_ne!(a.name, b.name, "duplicate option in `kyp {}`", spec.name);
                }
            }
        }
    }

    #[test]
    fn scan_and_serve_export_observability() {
        for name in ["scan", "serve"] {
            let spec = COMMANDS.iter().find(|s| s.name == name).unwrap();
            for needed in ["metrics", "trace"] {
                assert!(
                    spec.args.iter().any(|a| a.name == needed),
                    "`kyp {name}` is missing --{needed}"
                );
            }
        }
    }

    #[test]
    fn help_text_renders_for_every_command() {
        for spec in COMMANDS {
            let help = spec.help_text();
            assert!(help.contains(spec.name));
            assert!(help.contains(spec.summary));
        }
    }

    #[test]
    fn store_consumers_accept_from_store() {
        for name in ["train", "eval", "scan", "serve", "cluster"] {
            let spec = COMMANDS.iter().find(|s| s.name == name).unwrap();
            assert!(
                spec.args.iter().any(|a| a.name == "from-store"),
                "`kyp {name}` is missing --from-store"
            );
        }
        let gen = COMMANDS.iter().find(|s| s.name == "gen").unwrap();
        assert!(gen.args.iter().any(|a| a.name == "store"));
    }

    #[test]
    fn cascade_consumers_accept_both_cascade_flags() {
        for name in ["scan", "serve", "cluster"] {
            let spec = COMMANDS.iter().find(|s| s.name == name).unwrap();
            for needed in ["cascade", "cascade-band"] {
                assert!(
                    spec.args.iter().any(|a| a.name == needed),
                    "`kyp {name}` is missing --{needed}"
                );
            }
        }
        let trainer = COMMANDS.iter().find(|s| s.name == "cascade-train").unwrap();
        assert!(trainer.args.iter().any(|a| a.name == "from-store"));
        assert!(trainer.args.iter().any(|a| a.name == "out"));
    }

    #[test]
    fn store_inspect_takes_the_directory_positionally() {
        let positional = STORE_INSPECT.positional.expect("positional dir");
        assert_eq!(positional.name, "dir");
        assert!(STORE_INSPECT.args.iter().any(|a| a.name == "threads"));
        let help = STORE_INSPECT.help_text();
        assert!(help.contains("kyp store inspect <dir> [options]"), "{help}");
    }
}
