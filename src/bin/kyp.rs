//! `kyp` — command-line workflow for the Know Your Phish reproduction.
//!
//! Operates on the paper's json interchange format: scraped pages are
//! [`VisitedPage`] json (one per line in `.jsonl` files), the trained
//! model is a self-contained json bundle.
//!
//! ```console
//! $ kyp gen   --scale 0.02 --out data/           # synthesise + scrape a corpus
//! $ kyp train --data data/ --out model.json      # train the detector
//! $ kyp eval  --data data/ --model model.json    # Table VI-style metrics
//! $ kyp scan  --model model.json --data data/ --page data/sample_phish.json
//! ```

use knowyourphish::core::{
    DetectorConfig, FeatureExtractor, PhishDetector, Pipeline, PipelineVerdict, ScrapeReport,
    TargetIdentifier,
};
use knowyourphish::datagen::{CampaignConfig, Corpus};
use knowyourphish::ml::{metrics, Dataset};
use knowyourphish::search::SearchEngine;
use knowyourphish::web::{
    Browser, DomainRanker, FaultPlan, FlakyWorld, ResilientBrowser, VisitedPage, World,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// The persisted model bundle: everything `scan`/`eval` need offline.
#[derive(Serialize, Deserialize)]
struct ModelBundle {
    detector: PhishDetector,
    ranker: DomainRanker,
}

/// One searchable page of the legitimate index (`index.jsonl`).
#[derive(Serialize, Deserialize)]
struct IndexEntry {
    rdn: String,
    mld: String,
    text: String,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = parse_opts(&args[1..]);
    if let Some(threads) = opts.get("threads") {
        match threads.parse::<usize>() {
            Ok(n) if n >= 1 => knowyourphish::exec::set_threads(n),
            _ => {
                eprintln!("kyp: invalid --threads {threads:?} (want a positive integer)");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = match command.as_str() {
        "gen" => cmd_gen(&opts),
        "train" => cmd_train(&opts),
        "eval" => cmd_eval(&opts),
        "scan" => cmd_scan(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("kyp: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
kyp — Know Your Phish reproduction CLI

USAGE:
  kyp gen   --out <dir> [--scale <f>] [--seed <n>]   generate + scrape a corpus
            [--fault-rate <f>] [--fault-seed <n>]    ...through an unreliable web
  kyp train --data <dir> --out <model.json>          train the detector
  kyp eval  --data <dir> --model <model.json>        evaluate on the test sets
  kyp scan  --model <model.json> --data <dir> --page <page.json>
                                                     classify one scraped page

Every command accepts --threads <n> to size the parallel execution pool
(default: KYP_THREADS or the machine's available parallelism). Results
are bit-identical at any thread count.";

fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(key) = a.strip_prefix("--") {
            if let Some(value) = iter.next() {
                opts.insert(key.to_owned(), value.clone());
            }
        }
    }
    opts
}

fn opt<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{key}"))
}

/// Scrapes the named URL bundles through a resilient scraper, writing one
/// `VisitedPage` json line per captured page, and accounts every attempt
/// in the returned [`ScrapeReport`].
fn scrape_bundles<W: World>(
    scraper: &mut ResilientBrowser<'_, W>,
    bundles: &[(&str, &[String])],
    out: &Path,
) -> Result<ScrapeReport, String> {
    let mut report = ScrapeReport::default();
    for (name, urls) in bundles {
        let path = out.join(format!("{name}.jsonl"));
        let mut file = fs::File::create(&path).map_err(|e| format!("create {path:?}: {e}"))?;
        let mut n = 0;
        for url in *urls {
            report.requested += 1;
            match scraper.scrape(url) {
                Ok(scraped) => {
                    report.completed += 1;
                    if scraped.availability.is_degraded() {
                        report.degraded += 1;
                    }
                    let line = serde_json::to_string(&scraped.visit).map_err(|e| e.to_string())?;
                    writeln!(file, "{line}").map_err(|e| e.to_string())?;
                    n += 1;
                }
                Err(failure) => {
                    report.failed += 1;
                    report.count_cause(failure.cause);
                }
            }
        }
        eprintln!("  {name}.jsonl: {n} pages");
    }
    report.retries = scraper.total_retries();
    report.breaker_trips = scraper.breaker().trips();
    report.virtual_elapsed_ms = scraper.clock().now_ms();
    Ok(report)
}

/// `kyp gen`: synthesise a corpus and write the jsonl scrape bundles.
fn cmd_gen(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = PathBuf::from(opt(opts, "out")?);
    let scale: f64 = opts.get("scale").map_or(Ok(0.02), |s| {
        s.parse().map_err(|_| "invalid --scale".to_owned())
    })?;
    let mut config = CampaignConfig::scaled(scale);
    if let Some(seed) = opts.get("seed") {
        config.seed = seed.parse().map_err(|_| "invalid --seed".to_owned())?;
    }
    let fault_rate: f64 = opts.get("fault-rate").map_or(Ok(0.0), |s| {
        s.parse().map_err(|_| "invalid --fault-rate".to_owned())
    })?;
    let fault_seed: u64 = opts.get("fault-seed").map_or(Ok(config.seed), |s| {
        s.parse().map_err(|_| "invalid --fault-seed".to_owned())
    })?;
    fs::create_dir_all(&out).map_err(|e| format!("create {out:?}: {e}"))?;

    eprintln!("generating corpus at scale {scale}...");
    let corpus = Corpus::generate(&config);
    let browser = Browser::new(&corpus.world);

    let phish_train: Vec<String> = corpus.phish_train.iter().map(|r| r.url.clone()).collect();
    let phish_test: Vec<String> = corpus.phish_test.iter().map(|r| r.url.clone()).collect();
    let leg_test = corpus.english_test().to_vec();
    let bundles: [(&str, &[String]); 4] = [
        ("phish_train", &phish_train),
        ("phish_test", &phish_test),
        ("leg_train", &corpus.leg_train),
        ("leg_test", &leg_test),
    ];
    let report = if fault_rate > 0.0 {
        eprintln!("scraping through a faulty web (rate {fault_rate}, seed {fault_seed})...");
        let flaky = FlakyWorld::new(&corpus.world, FaultPlan::new(fault_seed, fault_rate));
        let mut scraper = ResilientBrowser::new(&flaky);
        scrape_bundles(&mut scraper, &bundles, &out)?
    } else {
        let mut scraper = ResilientBrowser::new(&corpus.world);
        scrape_bundles(&mut scraper, &bundles, &out)?
    };
    eprintln!(
        "scrape report: {}/{} pages captured ({} degraded), {} retries, {} breaker trips",
        report.completed, report.requested, report.degraded, report.retries, report.breaker_trips
    );
    if report.failed > 0 {
        eprintln!(
            "  failures: {} transient, {} timeout, {} deadline, {} circuit-open, {} not-found, {} bad-url, {} redirect-loop",
            report.failed_transient,
            report.failed_timeout,
            report.failed_deadline,
            report.failed_circuit_open,
            report.failed_not_found,
            report.failed_bad_url,
            report.failed_too_many_redirects
        );
    }

    // The offline popularity ranking and the search-engine index.
    let ranker_json = serde_json::to_string(&corpus.ranker).map_err(|e| e.to_string())?;
    fs::write(out.join("ranker.json"), ranker_json).map_err(|e| e.to_string())?;

    // Re-derive index entries from the legitimate sites the engine knows.
    // (The campaign indexes each site's crawlable text; we persist what a
    // crawler would store.)
    let mut index_file = fs::File::create(out.join("index.jsonl")).map_err(|e| e.to_string())?;
    for url in corpus.leg_train.iter().chain(corpus.english_test()) {
        if let Ok(visit) = browser.visit(url) {
            if let (Some(rdn), Some(mld)) = (visit.landing_url.rdn(), visit.landing_url.mld()) {
                let entry = IndexEntry {
                    rdn,
                    mld: mld.to_owned(),
                    text: format!("{} {}", visit.title, visit.text),
                };
                let line = serde_json::to_string(&entry).map_err(|e| e.to_string())?;
                writeln!(index_file, "{line}").map_err(|e| e.to_string())?;
            }
        }
    }

    // One sample phish bundle for `kyp scan` demos.
    if let Ok(visit) = browser.visit(&phish_test[0]) {
        let json = serde_json::to_string_pretty(&visit).map_err(|e| e.to_string())?;
        fs::write(out.join("sample_phish.json"), json).map_err(|e| e.to_string())?;
    }
    eprintln!("wrote corpus to {out:?}");
    Ok(())
}

fn read_jsonl(path: &Path) -> Result<Vec<VisitedPage>, String> {
    let file = fs::File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
    let mut pages = Vec::new();
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let page: VisitedPage =
            serde_json::from_str(&line).map_err(|e| format!("{path:?} line {}: {e}", i + 1))?;
        pages.push(page);
    }
    Ok(pages)
}

fn load_ranker(dir: &Path) -> Result<DomainRanker, String> {
    let json = fs::read_to_string(dir.join("ranker.json"))
        .map_err(|e| format!("read ranker.json: {e}"))?;
    serde_json::from_str(&json).map_err(|e| e.to_string())
}

fn featurize(
    extractor: &FeatureExtractor,
    legit: &[VisitedPage],
    phish: &[VisitedPage],
) -> Dataset {
    let mut data = Dataset::with_capacity(
        knowyourphish::core::features::FEATURE_COUNT,
        legit.len() + phish.len(),
    );
    for row in extractor.extract_batch(legit) {
        data.push_row(&row, false);
    }
    for row in extractor.extract_batch(phish) {
        data.push_row(&row, true);
    }
    data
}

/// `kyp train`: fit the detector from the jsonl bundles.
fn cmd_train(opts: &HashMap<String, String>) -> Result<(), String> {
    let data_dir = PathBuf::from(opt(opts, "data")?);
    let out = PathBuf::from(opt(opts, "out")?);

    let ranker = load_ranker(&data_dir)?;
    let extractor = FeatureExtractor::new(ranker.clone());
    let legit = read_jsonl(&data_dir.join("leg_train.jsonl"))?;
    let phish = read_jsonl(&data_dir.join("phish_train.jsonl"))?;
    eprintln!(
        "training on {} legitimate + {} phish pages...",
        legit.len(),
        phish.len()
    );

    let train = featurize(&extractor, &legit, &phish);
    let detector = PhishDetector::train(&train, &DetectorConfig::default());
    let bundle = ModelBundle { detector, ranker };
    let json = serde_json::to_string(&bundle).map_err(|e| e.to_string())?;
    fs::write(&out, json).map_err(|e| format!("write {out:?}: {e}"))?;
    eprintln!("model written to {out:?}");
    Ok(())
}

fn load_model(opts: &HashMap<String, String>) -> Result<ModelBundle, String> {
    let path = PathBuf::from(opt(opts, "model")?);
    let json = fs::read_to_string(&path).map_err(|e| format!("read {path:?}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| e.to_string())
}

/// `kyp eval`: Table VI-style metrics on the held-out test bundles.
fn cmd_eval(opts: &HashMap<String, String>) -> Result<(), String> {
    let data_dir = PathBuf::from(opt(opts, "data")?);
    let bundle = load_model(opts)?;
    let extractor = FeatureExtractor::new(bundle.ranker.clone());

    let legit = read_jsonl(&data_dir.join("leg_test.jsonl"))?;
    let phish = read_jsonl(&data_dir.join("phish_test.jsonl"))?;
    let test = featurize(&extractor, &legit, &phish);
    let scores = bundle.detector.score_dataset(&test);

    let conf =
        metrics::Confusion::at_threshold(&scores, test.labels(), bundle.detector.threshold());
    println!(
        "test set: {} legitimate + {} phish",
        legit.len(),
        phish.len()
    );
    println!("precision {:.3}", conf.precision());
    println!("recall    {:.3}", conf.recall());
    println!("f1-score  {:.3}", conf.f1());
    println!("fp rate   {:.4}", conf.fpr());
    println!("auc       {:.4}", metrics::auc(&scores, test.labels()));
    Ok(())
}

fn load_engine(dir: &Path) -> Result<SearchEngine, String> {
    let path = dir.join("index.jsonl");
    let file = fs::File::open(&path).map_err(|e| format!("open {path:?}: {e}"))?;
    let mut engine = SearchEngine::new();
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let entry: IndexEntry = serde_json::from_str(&line).map_err(|e| e.to_string())?;
        engine.index_page(&entry.rdn, &entry.mld, &entry.text);
    }
    Ok(engine)
}

/// `kyp scan`: classify a single scraped page and identify its target.
fn cmd_scan(opts: &HashMap<String, String>) -> Result<(), String> {
    let bundle = load_model(opts)?;
    let data_dir = PathBuf::from(opt(opts, "data")?);
    let page_path = PathBuf::from(opt(opts, "page")?);
    let json = fs::read_to_string(&page_path).map_err(|e| format!("read {page_path:?}: {e}"))?;
    let page: VisitedPage = serde_json::from_str(&json).map_err(|e| e.to_string())?;

    let engine = load_engine(&data_dir)?;
    let extractor = FeatureExtractor::new(bundle.ranker.clone());
    let identifier = TargetIdentifier::new(Arc::new(engine));
    let pipeline = Pipeline::new(extractor, bundle.detector, identifier);

    println!("page  : {}", page.landing_url);
    println!("title : {:?}", page.title);
    match pipeline.classify(&page) {
        PipelineVerdict::Legitimate { score } => {
            println!("verdict: legitimate (confidence {score:.3})")
        }
        PipelineVerdict::ConfirmedLegitimate { score, step } => println!(
            "verdict: legitimate — flagged ({score:.3}) but confirmed at identification step {step}"
        ),
        PipelineVerdict::Phish { score, candidates } => {
            println!("verdict: PHISH (confidence {score:.3})");
            for (i, c) in candidates.iter().enumerate() {
                println!(
                    "  target #{} : {} ({}) — {} appearances",
                    i + 1,
                    c.mld,
                    c.rdn,
                    c.appearances
                );
            }
        }
        PipelineVerdict::Suspicious { score } => {
            println!("verdict: suspicious (confidence {score:.3}), no target identified")
        }
    }
    Ok(())
}
