//! Offline stand-in for `criterion`.
//!
//! Provides the macro/API surface the workspace benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], `criterion_group!`,
//! `criterion_main!` and [`black_box`] — with a simple
//! mean-over-N-iterations timer instead of criterion's statistics.

use std::time::Instant;

pub use std::hint::black_box;

/// How batched setup output is grouped; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

/// Runs and times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    mean_ns: f64,
}

const WARMUP_ITERS: u32 = 10;
const MEASURE_ITERS: u32 = 100;

impl Bencher {
    /// Times `routine`, discarding its output via [`black_box`].
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(MEASURE_ITERS);
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let mut total_ns = 0u128;
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.mean_ns = total_ns as f64 / f64::from(MEASURE_ITERS);
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints the mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher);
        let ns = bencher.mean_ns;
        if ns >= 1_000_000.0 {
            println!("{name:<28} {:>10.3} ms/iter", ns / 1_000_000.0);
        } else if ns >= 1_000.0 {
            println!("{name:<28} {:>10.3} µs/iter", ns / 1_000.0);
        } else {
            println!("{name:<28} {ns:>10.1} ns/iter");
        }
        self
    }

    /// Opens a named benchmark group; benches run under `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named group of benchmarks, as in criterion.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count; accepted and ignored by the stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u32;
        Criterion::default().bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls >= WARMUP_ITERS + MEASURE_ITERS);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut next = 0u32;
        let mut seen = Vec::new();
        Criterion::default().bench_function("batched", |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |v| seen.push(v),
                BatchSize::SmallInput,
            )
        });
        // Every invocation saw a distinct setup value.
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len());
    }
}
