//! Offline stand-in for `rand_chacha`: a genuine ChaCha (8 rounds)
//! keystream generator implementing the vendored [`rand`] traits.
//!
//! Output is deterministic per seed and stable across platforms (the
//! keystream is produced in little-endian word order), though it is not
//! guaranteed to match upstream `rand_chacha` word for word.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Two rounds per iteration: one column round, one diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = working;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            index: 16,
        }
    }

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit key.
        let mut sm = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Draw more than one 16-word block and check for variety.
        let words: Vec<u32> = (0..80).map(|_| rng.next_u32()).collect();
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        assert!(distinct.len() > 70, "keystream should not repeat");
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64000 bits; expect about half set.
        assert!((30000..34000).contains(&ones), "{ones}");
    }
}
