//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! structs with named fields, unit structs, and enums whose variants are
//! unit, tuple or struct-like — the shapes this workspace uses. The JSON
//! mapping matches real serde's externally-tagged default:
//!
//! - struct        → `{"field": ...}`
//! - unit variant  → `"Variant"`
//! - tuple variant → `{"Variant": value}` (1 field) or `{"Variant": [..]}`
//! - struct variant→ `{"Variant": {"field": ...}}`
//!
//! Generics are not supported, and the only `#[serde(...)]` attribute
//! understood is `#[serde(skip)]` on a named struct field (omitted when
//! serializing, rebuilt with `Default::default()` when deserializing —
//! real serde's semantics). Anything else the macro cannot handle makes
//! it panic so failures are loud at compile time.
//!
//! Implementation note: with `syn`/`quote` unavailable offline, the input
//! is walked as raw `proc_macro` token trees and the generated impl is
//! assembled as a string, then re-parsed. Field *types* never need to be
//! parsed: the generated code names only field identifiers and lets type
//! inference pick the right `Serialize`/`Deserialize` impls.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a `struct` or `enum` item looks like after token-walking.
enum Shape {
    /// `struct Name;`
    UnitStruct { name: String },
    /// `struct Name { a: T, b: U }`
    Struct { name: String, fields: Vec<Field> },
    /// `enum Name { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// A named struct field and whether `#[serde(skip)]` marks it.
struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    Struct(Vec<String>),
}

/// True for `#` introducing an (outer) attribute.
fn is_pound(tt: &TokenTree) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == '#')
}

/// Skips attributes (`#[...]`) starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() && is_pound(&tokens[i]) {
        i += 1; // '#'
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
        {
            i += 1;
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "pub" {
                i += 1;
                if i < tokens.len()
                    && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
        }
    }
    i
}

/// True for a bracket group holding exactly `serde(... skip ...)`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(args)] if id.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "skip")),
        _ => false,
    }
}

/// Skips attributes at `i` like [`skip_attrs`], additionally reporting
/// whether one of them was `#[serde(skip)]`.
fn skip_attrs_noting_skip(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i < tokens.len() && is_pound(&tokens[i]) {
        i += 1; // '#'
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Bracket {
                skip |= attr_is_serde_skip(g);
                i += 1;
            }
        }
    }
    (i, skip)
}

/// Parses the named fields of a brace group: `a: T, pub b: U, ...`.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, skip) = skip_attrs_noting_skip(&tokens, i);
        i = skip_vis(&tokens, next);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected ':' after field {name}, got {other}"),
        }
        // Skip the type: consume until a top-level ',' outside angle brackets.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts the top-level comma-separated entries of a paren group.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut saw_trailing_comma = false;
    for tt in &tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_trailing_comma = true;
                continue;
            }
            _ => {}
        }
        saw_trailing_comma = false;
    }
    if saw_trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let kind = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let k = VariantKind::Tuple(count_tuple_fields(g));
                    i += 1;
                    k
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g)
                        .into_iter()
                        .map(|f| {
                            assert!(
                                !f.skip,
                                "serde_derive: #[serde(skip)] is only supported on \
                                 named struct fields, not enum variant fields"
                            );
                            f.name
                        })
                        .collect();
                    let k = VariantKind::Struct(fields);
                    i += 1;
                    k
                }
                _ => VariantKind::Unit,
            }
        } else {
            VariantKind::Unit
        };
        // Skip discriminant (`= expr`) if present, then the separating comma.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1; // ','
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (type {name})");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Struct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("serde_derive: malformed enum {name}: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Derives `serde::Serialize` (value-tree flavour, see crate docs).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_json_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                let f = &f.name;
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_json_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_json_value(&self) -> ::serde::Value {{\n\
                     let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Object(fields)\n\
                   }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_json_value(f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_json_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binders} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_json_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (value-tree flavour, see crate docs).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_json_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                   ::serde::Value::Null => Ok({name}),\n\
                   other => Err(::serde::Error::custom(format!(\"expected null for unit struct {name}, got {{other:?}}\"))),\n\
                 }}\n\
               }}\n\
             }}"
        ),
        Shape::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let skip = f.skip;
                let f = &f.name;
                if skip {
                    inits.push_str(&format!("{f}: ::std::default::Default::default(),\n"));
                    continue;
                }
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_json_value(::serde::obj_get(fields, \"{f}\")).map_err(|e| ::serde::Error::custom(format!(\"{name}.{f}: {{e}}\")))?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_json_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     let fields = value.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for struct {name}\"))?;\n\
                     Ok({name} {{\n{inits}}})\n\
                   }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        // Also accept the tagged-null form {"Variant": null}.
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let _ = inner; Ok({name}::{vn}) }},\n"
                        ));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_json_value(inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_json_value(&items[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let items = inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                               if items.len() != {n} {{ return Err(::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                               Ok({name}::{vn}({}))\n\
                             }},\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_json_value(::serde::obj_get(body, \"{f}\"))?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let body = inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                               Ok({name}::{vn} {{ {} }})\n\
                             }},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_json_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     match value {{\n\
                       ::serde::Value::String(tag) => match tag.as_str() {{\n\
                         {unit_arms}\
                         other => Err(::serde::Error::custom(format!(\"unknown variant {{other}} of {name}\"))),\n\
                       }},\n\
                       ::serde::Value::Object(members) if members.len() == 1 => {{\n\
                         let (tag, inner) = &members[0];\n\
                         match tag.as_str() {{\n\
                           {tagged_arms}\
                           other => Err(::serde::Error::custom(format!(\"unknown variant {{other}} of {name}\"))),\n\
                         }}\n\
                       }},\n\
                       other => Err(::serde::Error::custom(format!(\"expected enum {name}, got {{other:?}}\"))),\n\
                     }}\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
