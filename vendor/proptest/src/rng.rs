//! The deterministic RNG behind the vendored proptest.

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds an RNG for one test case, mixing the per-test seed with the
    /// case index so every case sees a fresh stream.
    pub fn for_case(test_seed: u64, case: u64) -> Self {
        TestRng {
            state: test_seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

/// FNV-1a over a byte string — stable seeds from test names.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
