//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses:
//! the [`proptest!`] macro, string-pattern strategies, numeric ranges,
//! tuples, [`collection::vec`], [`strategy::Just`], `prop_oneof!`,
//! `any::<T>()` and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics immediately with the values
//!   that were generated (printed by the panic message where the test
//!   asserts them).
//! - **Deterministic.** Seeds derive from the test-function name, so runs
//!   are reproducible without a `proptest-regressions` file (regression
//!   files are ignored).
//! - `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.

pub mod collection;
pub mod pattern;
pub mod rng;
pub mod strategy;

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Leaner than upstream's 256: these tests run in CI on every push.
        ProptestConfig { cases: 64 }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn name(binding in strategy, ...) { body }`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::rng::hash_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::rng::TestRng::for_case(seed, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn compound() -> impl Strategy<Value = String> {
        (
            prop_oneof![Just("http"), Just("https")],
            collection::vec("[a-z]{1,5}", 1..4),
        )
            .prop_map(|(scheme, labels)| format!("{scheme}://{}.com", labels.join(".")))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_in_bounds(n in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn mapped_compound(url in compound()) {
            prop_assert!(url.starts_with("http"));
            prop_assert!(url.ends_with(".com"));
        }

        #[test]
        fn bools_vary(bits in collection::vec(any::<bool>(), 64)) {
            // With 64 draws, both values should appear.
            prop_assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::rng::{hash_name, TestRng};
        use crate::strategy::Strategy;
        let mut a = TestRng::for_case(hash_name("x"), 3);
        let mut b = TestRng::for_case(hash_name("x"), 3);
        assert_eq!("[a-z]{8}".generate(&mut a), "[a-z]{8}".generate(&mut b));
    }
}
