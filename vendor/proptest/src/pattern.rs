//! A regex-subset string generator.
//!
//! Supports exactly the constructs proptest string strategies use in this
//! workspace: literal characters, `.` (any printable char), character
//! classes `[a-z0-9_-]` (ranges + singletons, no negation), and the
//! quantifiers `{n}`, `{m,n}`, `*`, `+`, `?` applied to the preceding
//! atom. Anything else is treated as a literal character.

use crate::rng::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any printable character (mostly ASCII, some multibyte).
    Any,
    /// A literal character.
    Literal(char),
    /// A character class: closed ranges over `char`.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// A parsed pattern: a sequence of quantified atoms.
#[derive(Debug, Clone)]
pub struct Pattern {
    pieces: Vec<Piece>,
}

/// Characters `.` draws from: printable ASCII plus a few multibyte
/// characters so parser robustness tests see non-ASCII input.
const ANY_EXTRA: &[char] = &['ß', 'é', 'ñ', 'Ü', '漢', '字', '🦀', '☃', '—', 'م', 'и'];

impl Pattern {
    /// Parses `pattern`; unsupported syntax degrades to literals.
    pub fn parse(pattern: &str) -> Self {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces: Vec<Piece> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    i += 1; // ']'
                    Atom::Class(ranges)
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                        if let Some(close) = close {
                            let body: String = chars[i + 1..close].iter().collect();
                            i = close + 1;
                            let parts: Vec<&str> = body.splitn(2, ',').collect();
                            let lo: u32 = parts[0].trim().parse().unwrap_or(0);
                            let hi: u32 = if parts.len() == 2 {
                                parts[1].trim().parse().unwrap_or(lo)
                            } else {
                                lo
                            };
                            (lo, hi.max(lo))
                        } else {
                            (1, 1)
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        Pattern { pieces }
    }

    /// Generates one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = piece.min + rng.below(u64::from(piece.max - piece.min) + 1) as u32;
            for _ in 0..n {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Any => {
            // 1-in-16 draws picks a multibyte character.
            if rng.below(16) == 0 {
                ANY_EXTRA[rng.below(ANY_EXTRA.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or(' ')
            }
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32) + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for &(lo, hi) in ranges {
                let span = u64::from(hi as u32 - lo as u32) + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                }
                pick -= span;
            }
            ' '
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        Pattern::parse(pattern).generate(&mut TestRng::for_case(seed, 0))
    }

    #[test]
    fn class_with_quantifier() {
        for seed in 0..200 {
            let s = gen("[a-z]{1,8}", seed);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn sequence_of_atoms() {
        for seed in 0..200 {
            let s = gen("[a-z][a-z0-9-]{0,10}[a-z0-9]", seed);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(!s.ends_with('-'), "{s:?}");
            assert!(s.chars().count() >= 2);
        }
    }

    #[test]
    fn dot_any_with_bounds() {
        for seed in 0..100 {
            let s = gen(".{0,120}", seed);
            assert!(s.chars().count() <= 120);
        }
    }

    #[test]
    fn class_with_trailing_dash_and_specials() {
        for seed in 0..200 {
            let s = gen("[a-z0-9/._-]{0,30}", seed);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "/._-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn exact_count() {
        assert_eq!(gen("x{4}", 1), "xxxx");
        assert_eq!(gen("abc", 9), "abc");
    }
}
