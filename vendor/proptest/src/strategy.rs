//! Value-generation strategies (no shrinking).

use crate::pattern::Pattern;
use crate::rng::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of an associated type from a seeded RNG.
///
/// Unlike real proptest there is no value tree and no shrinking: a failing
/// case panics with the assertion message directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Strategy for `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

/// Builds the canonical strategy for a type (`any::<bool>()`, ...).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, mixed-magnitude doubles.
        let mag = rng.unit_f64() * 2e6 - 1e6;
        mag * rng.unit_f64()
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// String literals act as regex-like generators (`"[a-z]{1,8}"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::parse(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::parse(self).generate(rng)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}
