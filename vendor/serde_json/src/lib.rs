//! Offline stand-in for `serde_json`.
//!
//! Text encoding/decoding for the vendored `serde` value tree:
//! [`to_string`], [`to_string_pretty`], [`to_value`] and [`from_str`].
//! Floats print via Rust's shortest-roundtrip `Display`, so
//! serialize→deserialize is lossless for finite values; non-finite floats
//! become `null` (as in real serde_json).

pub use serde::{Error, Number, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// This implementation cannot fail; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// This implementation cannot fail; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some("  "), 0);
    Ok(out)
}

/// Converts `value` into a [`Value`] tree.
///
/// # Errors
///
/// This implementation cannot fail; the `Result` mirrors the real API.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_complete(text)?;
    T::from_json_value(&value)
}

/// Converts a [`Value`] tree into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_json_value(&value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(unit) = indent {
            out.push('\n');
            for _ in 0..depth {
                out.push_str(unit);
            }
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            pad(out, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.parse_lit("null", Value::Null),
            b't' => self.parse_lit("true", Value::Bool(true)),
            b'f' => self.parse_lit("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected byte 0x{other:02x}"))),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_hex4(&mut self) -> Result<u16> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("bad surrogate"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("lone surrogate"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(&format!("bad escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar from the source text.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn parse_value_complete(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "-7", "1.5", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn float_display_roundtrips() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 6.02e23, -0.25] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn unicode_strings() {
        let s = "ß漢字🦀 — مرحبا \"q\" \\ \u{1}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
        // Surrogate-pair escapes parse too.
        let crab: String = from_str("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(crab, "🦀");
    }

    #[test]
    fn pretty_output_parses() {
        let v: Value = from_str(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn object_get() {
        let v: Value = from_str(r#"{"x": 3}"#).unwrap();
        assert_eq!(v.get("x").and_then(Value::as_u64), Some(3));
        assert!(v.get("y").is_none());
    }
}
