//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal, deterministic implementation of the slice of the `rand 0.8`
//! API it actually uses: [`RngCore`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom`] (`choose` / `shuffle`).
//!
//! The streams are NOT bit-compatible with upstream `rand`; they are
//! deterministic given a seed, which is all the reproduction relies on.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 32/64-bit output words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// A uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    //! Sequence-related helpers (`rand::seq`).

    use super::Rng;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but serviceable mixer for the unit tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 ^ (self.0 >> 33)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Counter(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([42u8].choose(&mut rng) == Some(&42));
    }
}
