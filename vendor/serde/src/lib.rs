//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors a small value-tree serialization framework under the
//! `serde` name. [`Serialize`] renders a type into a JSON [`Value`];
//! [`Deserialize`] rebuilds the type from one. The companion
//! `serde_derive` proc macro generates both impls for structs and enums
//! (externally tagged, like real serde), and the vendored `serde_json`
//! handles text encoding.
//!
//! Only what this workspace uses is implemented; there is no
//! `Serializer`/`Deserializer` abstraction, no borrowed deserialization
//! and no `#[serde(...)]` attribute support.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: integers are kept exact, floats are IEEE 754 doubles.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as an `f64` (lossy only beyond 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(v) => {
                if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
                    Some(v as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The number as an `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v) => {
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 {
                    Some(v as i64)
                } else {
                    None
                }
            }
        }
    }
}

/// An ordered JSON object; insertion order is preserved.
pub type Object = Vec<(String, Value)>;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Object),
}

/// A static `null`, for lending out references to missing members.
pub static NULL_VALUE: Value = Value::Null;

impl Value {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric content as `u64`, if integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up `key` in an object body, lending `null` when absent so that
/// `Option` fields tolerate missing members (derive-macro support).
pub fn obj_get<'a>(fields: &'a Object, key: &str) -> &'a Value {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL_VALUE)
}

/// Renders a value tree from `self`.
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_json_value(&self) -> Value;
}

/// Rebuilds `Self` from a value tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of `value`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `value` has the wrong shape.
    fn from_json_value(value: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {got:?}")))
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().map_or_else(|| type_err("bool", value), Ok)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {value:?}"))
                })?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                };
                let n = n.ok_or_else(|| {
                    Error::custom(format!("expected signed integer, got {value:?}"))
                })?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Number(Number::Float(v))
                } else {
                    // Like serde_json: non-finite floats become null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => type_err("number", value),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .map_or_else(|| type_err("string", value), Ok)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        T::from_json_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        items.iter().map(T::from_json_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_json_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| Error::custom(format!("expected {N} elements, got {}", v.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::custom("expected array"))?;
                let mut it = items.iter();
                let out = ($({
                    let slot: $name = Deserialize::from_json_value(
                        it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                    )?;
                    slot
                },)+);
                if it.next().is_some() {
                    return Err(Error::custom("tuple too long"));
                }
                Ok(out)
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// Map keys: JSON object members are always strings.
pub trait MapKey: Sized {
    /// Renders the key as an object-member name.
    fn to_key(&self) -> String;
    /// Parses the key back from a member name.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the name does not parse.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(Error::custom)
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        // Sort members so output is deterministic despite hash order.
        let mut fields: Object = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_json_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_json_value(&7u32.to_json_value()), Ok(7));
        assert_eq!(i64::from_json_value(&(-3i64).to_json_value()), Ok(-3));
        assert_eq!(f64::from_json_value(&1.5f64.to_json_value()), Ok(1.5));
        assert_eq!(bool::from_json_value(&true.to_json_value()), Ok(true));
        assert_eq!(
            String::from_json_value(&"hi".to_string().to_json_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_null_mapping() {
        let none: Option<String> = None;
        assert_eq!(none.to_json_value(), Value::Null);
        assert_eq!(Option::<String>::from_json_value(&Value::Null), Ok(None));
    }

    #[test]
    fn arrays_and_maps() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_json_value(&v.to_json_value()), Ok(v));
        let arr = [9u8, 8, 7, 6];
        assert_eq!(<[u8; 4]>::from_json_value(&arr.to_json_value()), Ok(arr));
        let mut m = HashMap::new();
        m.insert(5u64, 0.25f64);
        let back: HashMap<u64, f64> = HashMap::from_json_value(&m.to_json_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u32::from_json_value(&Value::String("x".into())).is_err());
        assert!(bool::from_json_value(&Value::Null).is_err());
        assert!(<[u8; 4]>::from_json_value(&vec![1u8].to_json_value()).is_err());
    }
}
